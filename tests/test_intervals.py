"""Tests for self-join estimation, error bars, and adaptive sizing."""

import numpy as np
import pytest

from repro import SketchTree, SketchTreeConfig
from repro.core import chebyshev_half_width, recommend_config
from repro.errors import ConfigError
from repro.sketch import SketchMatrix
from repro.trees import from_sexpr


class TestSelfJoinEstimation:
    def test_f2_estimator_recovers_self_join(self):
        counts = {v: c for v, c in zip(range(50), [40, 30, 20] + [3] * 47)}
        true_sj = sum(c * c for c in counts.values())
        matrix = SketchMatrix(120, 7, seed=2)
        matrix.update_counts(counts)
        estimate = matrix.estimate_self_join_size()
        assert estimate == pytest.approx(true_sj, rel=0.3)

    def test_f2_unbiased_over_draws(self):
        counts = {1: 10, 2: 6, 3: 3}
        true_sj = sum(c * c for c in counts.values())
        estimates = []
        for seed in range(300):
            matrix = SketchMatrix(1, 1, seed=seed)
            matrix.update_counts(counts)
            estimates.append(matrix.estimate_self_join_size())
        assert np.mean(estimates) == pytest.approx(true_sj, rel=0.15)

    def test_sketchtree_residual_self_join(self):
        # With top-k deleting the heavy value, the residual self-join
        # reported by the synopsis must collapse.
        heavy = from_sexpr("(H (X))")
        rare = from_sexpr("(R (Y))")
        trees = [heavy] * 200 + [rare] * 4
        base = dict(s1=60, s2=7, max_pattern_edges=1, n_virtual_streams=1, seed=3)
        plain = SketchTree(SketchTreeConfig(**base)).ingest(trees)
        pruned = SketchTree(SketchTreeConfig(**base, topk_size=1)).ingest(trees)
        assert pruned.estimate_self_join_size() < 0.2 * plain.estimate_self_join_size()

    def test_empty_synopsis_zero(self):
        synopsis = SketchTree(
            SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31)
        )
        assert synopsis.estimate_self_join_size() == 0.0


class TestChebyshevBars:
    def test_half_width_formula(self):
        # a = sqrt(SJ / (s1 * gamma))
        assert chebyshev_half_width(1000, 10, confidence=0.9) == pytest.approx(
            (1000 / (10 * 0.1)) ** 0.5
        )

    def test_half_width_shrinks_with_s1(self):
        assert chebyshev_half_width(100, 100) < chebyshev_half_width(100, 10)

    def test_validation(self):
        with pytest.raises(ConfigError):
            chebyshev_half_width(10, 0)
        with pytest.raises(ConfigError):
            chebyshev_half_width(10, 5, confidence=1.5)
        with pytest.raises(ConfigError):
            chebyshev_half_width(-1, 5)

    def test_interval_contains_truth_typically(self):
        # Conservative bars: over independent draws the 80%-interval
        # must cover the true count at >= its nominal rate.
        trees = [from_sexpr("(A (B) (C))")] * 30 + [from_sexpr("(A (D))")] * 10
        covered = 0
        runs = 20
        for seed in range(runs):
            config = SketchTreeConfig(
                s1=30, s2=5, max_pattern_edges=2, n_virtual_streams=31,
                seed=seed,
            )
            synopsis = SketchTree(config).ingest(trees)
            interval = synopsis.estimate_ordered_interval(
                "(A (D))", confidence=0.8
            )
            if 10 in interval:
                covered += 1
        assert covered >= int(0.8 * runs)

    def test_interval_for_empty_stream(self):
        synopsis = SketchTree(
            SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31)
        )
        interval = synopsis.estimate_ordered_interval("(A (B))")
        assert interval.estimate == 0.0
        assert interval.half_width == 0.0

    def test_interval_repr_and_bounds(self):
        from repro.core import Interval

        interval = Interval(100.0, 20.0, 0.9, 5000.0)
        assert interval.low == 80.0
        assert interval.high == 120.0
        assert 100.0 in interval
        assert 200.0 not in interval
        assert "±" in repr(interval)


class TestRecommendConfig:
    def test_matches_theorem1(self):
        rec = recommend_config(
            self_join_size=1e6, frequency=100, epsilon=0.1, delta=0.1
        )
        from repro.sketch import s1_for_point_query, s2_for_confidence

        assert rec.s1 == s1_for_point_query(1e6, 100, 0.1)
        assert rec.s2 == s2_for_confidence(0.1)

    def test_memory_scales_with_streams(self):
        small = recommend_config(1e6, 100, 0.1, 0.1, n_virtual_streams=31)
        large = recommend_config(1e6, 100, 0.1, 0.1, n_virtual_streams=229)
        assert large.sketch_bytes > small.sketch_bytes

    def test_sum_query_sizing(self):
        rec = recommend_config(
            1e6, 300, 0.1, 0.1, n_patterns=3
        )
        from repro.sketch import s1_for_sum_query

        assert rec.s1 == s1_for_sum_query(1e6, 300, 3, 0.1)

    def test_end_to_end_sizing_meets_target(self):
        """Size a synopsis from a pilot's self-reported SJ; the resulting
        estimate must land within the requested epsilon (checked at the
        median over draws, the quantity the theorem controls)."""
        trees = [from_sexpr("(A (B) (C))")] * 60 + [
            from_sexpr(f"(A (L{i}))") for i in range(30)
        ]
        pilot = SketchTree(
            SketchTreeConfig(s1=40, s2=5, max_pattern_edges=2,
                             n_virtual_streams=1, seed=0)
        ).ingest(trees)
        sj = pilot.estimate_self_join_size()
        rec = recommend_config(sj, frequency=60, epsilon=0.25, delta=0.25,
                               n_virtual_streams=1)
        errors = []
        for seed in range(7):
            config = SketchTreeConfig(
                s1=rec.s1, s2=rec.s2, max_pattern_edges=2,
                n_virtual_streams=1, seed=100 + seed,
            )
            synopsis = SketchTree(config).ingest(trees)
            estimate = synopsis.estimate_ordered("(A (B) (C))")
            errors.append(abs(estimate - 60) / 60)
        assert sorted(errors)[len(errors) // 2] <= 0.25
