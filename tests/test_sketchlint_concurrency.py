"""Tests for sketchlint's concurrency-safety phase (SKL201–SKL205), the
deterministic baseline writer, and the ``--jobs`` parallel driver.

Rule fixtures are mini-projects written to ``tmp_path`` and analysed
under a *custom* :class:`ConcurrencyConfig`, so the tests control which
qualnames are concurrent entrypoints.  The acceptance-mutation tests run
the real analysis over the real ``src/`` tree with one lock surgically
removed, pinning that the rules would catch exactly the regressions the
locks exist to prevent.
"""

import random
from pathlib import Path

import pytest

from tools.sketchlint.baseline import render_baseline
from tools.sketchlint.engine import lint_paths_with_sources
from tools.sketchlint.semantic import analyze_project
from tools.sketchlint.semantic.callgraph import CallGraph
from tools.sketchlint.semantic.concurrency import (
    DEFAULT_CONFIG,
    ConcurrencyConfig,
    EntrypointGroup,
    check_concurrency,
)
from tools.sketchlint.semantic.model import ProjectModel
from tools.sketchlint.violations import Violation

REPO_ROOT = Path(__file__).resolve().parent.parent

#: One self-parallel group entering every Store method: the smallest
#: model in which any unguarded shared write is a hazard.
WORKERS = ConcurrencyConfig(
    groups=(
        EntrypointGroup("workers", ("app.store.Store.*",), parallel=True),
    )
)

#: Two single-threaded groups touching the same class: hazards come from
#: the *pair*, not from self-parallelism.
WRITER_READER = ConcurrencyConfig(
    groups=(
        EntrypointGroup("writer", ("app.store.Store.put*",), parallel=False),
        EntrypointGroup("reader", ("app.store.Store.get*",), parallel=False),
    )
)


def write_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``relative path -> source`` as a package tree."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


def run_concurrency(tmp_path, files, config):
    root = write_project(tmp_path, files)
    pairs = [
        (path, path.read_text(encoding="utf-8"))
        for path in sorted(root.rglob("*.py"))
    ]
    model = ProjectModel.build(pairs)
    graph = CallGraph.build(model)
    return check_concurrency(model, graph, config=config)


def rules_of(violations):
    return sorted({v.rule for v in violations})


class TestSKL201UnguardedWrites:
    def test_unguarded_write_from_parallel_group(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "    def put(self, x):\n"
                    "        self._total = x\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL201"]
        assert "Store._total" in violations[0].message

    def test_two_single_threaded_groups_also_conflict(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "    def put(self, x):\n"
                    "        self._total = x\n"
                    "    def get(self):\n"
                    "        return self._total\n"
                ),
            },
            WRITER_READER,
        )
        assert rules_of(violations) == ["SKL201"]

    def test_lock_guarded_write_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, x):\n"
                    "        with self._lock:\n"
                    "            self._total = x\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_constructor_writes_are_not_hazards(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "    def get(self):\n"
                    "        return self._total\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_single_serial_group_is_not_a_hazard(self, tmp_path):
        config = ConcurrencyConfig(
            groups=(
                EntrypointGroup("only", ("app.store.Store.*",), parallel=False),
            )
        )
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "    def put(self, x):\n"
                    "        self._total = x\n"
                ),
            },
            config,
        )
        assert violations == []

    def test_write_in_helper_reached_through_entrypoint(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "    def put(self, x):\n"
                    "        self._apply(x)\n"
                    "    def _apply(self, x):\n"
                    "        self._total = x\n"
                ),
            },
            ConcurrencyConfig(
                groups=(
                    EntrypointGroup(
                        "workers", ("app.store.Store.put",), parallel=True
                    ),
                )
            ),
        )
        assert rules_of(violations) == ["SKL201"]
        assert "_apply" in violations[0].message

    def test_guarded_by_annotation_discharges_the_write(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, x):\n"
                    "        with self._lock:\n"
                    "            self._apply(x)\n"
                    "    def _apply(self, x):  # sketchlint: guarded-by=_lock\n"
                    "        self._total = x\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_unguarded_module_global_write(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/state.py": (
                    "_current = None\n"
                    "def install(value):\n"
                    "    global _current\n"
                    "    _current = value\n"
                ),
            },
            ConcurrencyConfig(
                groups=(
                    EntrypointGroup(
                        "workers", ("app.state.install",), parallel=True
                    ),
                )
            ),
        )
        assert rules_of(violations) == ["SKL201"]
        assert "module global" in violations[0].message

    def test_module_global_write_under_module_lock_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/state.py": (
                    "import threading\n"
                    "_current = None\n"
                    "_LOCK = threading.Lock()\n"
                    "def install(value):\n"
                    "    global _current\n"
                    "    with _LOCK:\n"
                    "        _current = value\n"
                ),
            },
            ConcurrencyConfig(
                groups=(
                    EntrypointGroup(
                        "workers", ("app.state.install",), parallel=True
                    ),
                )
            ),
        )
        assert violations == []


class TestSKL202CheckThenAct:
    LRU = (
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._cache = {}\n"
        "    def put(self, key):\n"
        "        value = self._cache.get(key)\n"
        "        if value is None:\n"
        "            value = key * 2\n"
        "            self._cache[key] = value\n"
        "        return value\n"
    )

    def test_lru_get_miss_insert(self, tmp_path):
        violations = run_concurrency(tmp_path, {"app/store.py": self.LRU}, WORKERS)
        assert rules_of(violations) == ["SKL202"]
        assert "check-then-act" in violations[0].message

    def test_unguarded_increment(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self.hits = 0\n"
                    "    def put(self):\n"
                    "        self.hits += 1\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL202"]
        assert "read-modify-write" in violations[0].message

    def test_probe_and_insert_under_one_lock_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._cache = {}\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, key):\n"
                    "        with self._lock:\n"
                    "            value = self._cache.get(key)\n"
                    "            if value is None:\n"
                    "                value = key * 2\n"
                    "                self._cache[key] = value\n"
                    "        return value\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_probe_and_insert_in_separate_lock_scopes_still_flagged(
        self, tmp_path
    ):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._cache = {}\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, key):\n"
                    "        with self._lock:\n"
                    "            value = self._cache.get(key)\n"
                    "        if value is None:\n"
                    "            value = key * 2\n"
                    "            with self._lock:\n"
                    "                self._cache[key] = value\n"
                    "        return value\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL202"]

    def test_alias_of_attribute_is_tracked(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._cache = {}\n"
                    "    def put(self, key):\n"
                    "        cache = self._cache\n"
                    "        value = cache.get(key)\n"
                    "        if value is None:\n"
                    "            cache[key] = key * 2\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL202"]


class TestSKL203EscapingInternals:
    def test_returning_locked_container_by_reference(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:  # sketchlint: thread-safe\n"
                    "    def __init__(self):\n"
                    "        self._items = []\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, x):\n"
                    "        with self._lock:\n"
                    "            self._items.append(x)\n"
                    "    def items(self):\n"
                    "        return self._items\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL203"]
        assert "by reference" in violations[0].message

    def test_returning_a_copy_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:  # sketchlint: thread-safe\n"
                    "    def __init__(self):\n"
                    "        self._items = []\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, x):\n"
                    "        with self._lock:\n"
                    "            self._items.append(x)\n"
                    "    def items(self):\n"
                    "        with self._lock:\n"
                    "            return list(self._items)\n"
                ),
            },
            WORKERS,
        )
        assert violations == []


class TestSKL204LockOrder:
    def test_opposite_nesting_order(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "    def ab(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "    def ba(self):\n"
                    "        with self._b:\n"
                    "            with self._a:\n"
                    "                pass\n"
                ),
            },
            WORKERS,
        )
        assert "SKL204" in rules_of(violations)
        assert any("order" in v.message for v in violations)

    def test_consistent_nesting_order_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._a = threading.Lock()\n"
                    "        self._b = threading.Lock()\n"
                    "    def one(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                    "    def two(self):\n"
                    "        with self._a:\n"
                    "            with self._b:\n"
                    "                pass\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_reacquire_through_call_graph(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                ),
            },
            WORKERS,
        )
        assert "SKL204" in rules_of(violations)
        assert any("re-acquired" in v.message for v in violations)

    def test_rlock_reacquire_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.RLock()\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            self.inner()\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            pass\n"
                ),
            },
            WORKERS,
        )
        assert violations == []

    def test_public_lock_private_helper_pattern_is_clean(self, tmp_path):
        # The pattern the runtime fixes use: the public method takes the
        # lock once and delegates to an annotated private helper.
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._total = 0\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self, x):\n"
                    "        with self._lock:\n"
                    "            self._apply(x)\n"
                    "    def put_many(self, xs):\n"
                    "        with self._lock:\n"
                    "            for x in xs:\n"
                    "                self._apply(x)\n"
                    "    def _apply(self, x):  # sketchlint: guarded-by=_lock\n"
                    "        self._total += x\n"
                ),
            },
            WORKERS,
        )
        assert violations == []


class TestSKL205SharedRng:
    RNG = (
        "import numpy as np\n"
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._rng = np.random.default_rng(0)\n"
        "    def put(self):\n"
        "        return self._rng.integers(10)\n"
    )

    def test_rng_from_parallel_group(self, tmp_path):
        violations = run_concurrency(tmp_path, {"app/store.py": self.RNG}, WORKERS)
        assert "SKL205" in rules_of(violations)
        assert "nondeterministic" in violations[-1].message

    def test_rng_from_one_serial_group_is_clean(self, tmp_path):
        config = ConcurrencyConfig(
            groups=(
                EntrypointGroup("only", ("app.store.Store.*",), parallel=False),
            )
        )
        violations = run_concurrency(tmp_path, {"app/store.py": self.RNG}, config)
        assert violations == []

    def test_rng_under_lock_is_clean(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import threading\n"
                    "import numpy as np\n"
                    "class Store:\n"
                    "    def __init__(self):\n"
                    "        self._rng = np.random.default_rng(0)\n"
                    "        self._lock = threading.Lock()\n"
                    "    def put(self):\n"
                    "        with self._lock:\n"
                    "            return self._rng.integers(10)\n"
                ),
            },
            WORKERS,
        )
        assert violations == []


class TestContracts:
    UNGUARDED = (
        "class Store:{contract}\n"
        "    def __init__(self):\n"
        "        self._items = {{}}\n"
        "    def put(self, key):\n"
        "        value = self._items.get(key)\n"
        "        if value is None:\n"
        "            self._items[key] = key\n"
        "    def items(self):\n"
        "        return self._items\n"
    )

    def test_undeclared_class_gets_the_full_rule_set(self, tmp_path):
        source = self.UNGUARDED.format(contract="")
        violations = run_concurrency(tmp_path, {"app/store.py": source}, WORKERS)
        assert rules_of(violations) == ["SKL202", "SKL203"]

    def test_single_writer_waives_guard_rules(self, tmp_path):
        source = self.UNGUARDED.format(contract="  # sketchlint: single-writer")
        violations = run_concurrency(tmp_path, {"app/store.py": source}, WORKERS)
        assert violations == []

    def test_thread_confined_waives_everything(self, tmp_path):
        source = (
            "import numpy as np\n"
            + self.UNGUARDED.format(contract="  # sketchlint: thread-confined")
        )
        violations = run_concurrency(tmp_path, {"app/store.py": source}, WORKERS)
        assert violations == []

    def test_single_writer_keeps_skl205(self, tmp_path):
        violations = run_concurrency(
            tmp_path,
            {
                "app/store.py": (
                    "import numpy as np\n"
                    "class Store:  # sketchlint: single-writer\n"
                    "    def __init__(self):\n"
                    "        self._rng = np.random.default_rng(0)\n"
                    "    def put(self):\n"
                    "        return self._rng.integers(10)\n"
                ),
            },
            WORKERS,
        )
        assert rules_of(violations) == ["SKL205"]


def _src_pairs(mutate: dict[str, tuple[str, str]] | None = None):
    """All of src/ as ``(path, source)``, with optional string surgeries.

    ``mutate`` maps a path suffix to an ``(old, new)`` replacement; the
    test fails if the old text is missing (the fixture went stale).
    """
    pairs = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        if mutate:
            for suffix, (old, new) in mutate.items():
                if path.as_posix().endswith(suffix):
                    assert old in source, f"stale mutation fixture for {suffix}"
                    source = source.replace(old, new)
        pairs.append((path, source))
    return pairs


class TestAcceptanceMutations:
    """Re-introducing the bugs the locks fixed must trip the analysis."""

    def test_real_src_is_clean(self):
        violations = analyze_project(
            _src_pairs(), select={"SKL201", "SKL202", "SKL203", "SKL204", "SKL205"}
        )
        assert violations == []

    def test_removing_a_lock_trips_skl201(self):
        # Gauge.set without its lock is an unguarded shared-state write
        # reachable from the (parallel) metrics group.
        mutated = _src_pairs(
            mutate={
                "repro/obs/registry.py": (
                    "    def set(self, value: float) -> None:\n"
                    "        with self._lock:\n"
                    "            self._value = value\n",
                    "    def set(self, value: float) -> None:\n"
                    "        if True:\n"
                    "            self._value = value\n",
                )
            }
        )
        violations = analyze_project(mutated, select={"SKL201"})
        assert any(
            v.rule == "SKL201" and v.path.endswith("repro/obs/registry.py")
            for v in violations
        )

    def test_unguarded_tracker_transitions_trip_skl201(self):
        # TopKTracker._process carries the guarded-by annotation that
        # asserts every caller (ingest, and now the admin/http merge
        # path through refold → bulk_build) holds the tracker lock.
        # Dropping the assertion leaves Algorithm 4's heap/map/counter
        # writes unguarded from a parallel group's point of view.
        mutated = _src_pairs(
            mutate={
                "repro/core/topk.py": (
                    "    def _process(self, value: int) -> None:"
                    "  # sketchlint: guarded-by=_lock\n",
                    "    def _process(self, value: int) -> None:\n",
                )
            }
        )
        violations = analyze_project(mutated, select={"SKL201"})
        assert any(
            v.rule == "SKL201" and v.path.endswith("repro/core/topk.py")
            for v in violations
        )

    def test_unguarded_lru_insert_trips_skl202(self):
        # PatternEncoder.encode without its lock re-introduces the
        # canonical get-miss-insert race and the unguarded hit counters.
        mutated = _src_pairs(
            mutate={
                "repro/core/encoding.py": (
                    '"""The one-dimensional value of a pattern (LRU-memoised)."""\n'
                    "        with self._lock:\n",
                    '"""The one-dimensional value of a pattern (LRU-memoised)."""\n'
                    "        if True:\n",
                )
            }
        )
        violations = analyze_project(mutated, select={"SKL202"})
        assert any(
            v.rule == "SKL202" and v.path.endswith("repro/core/encoding.py")
            for v in violations
        )


class TestDefaultConfig:
    def test_groups_cover_the_serving_tier(self):
        names = {group.name for group in DEFAULT_CONFIG.groups}
        assert names == {
            "ingest",
            "query",
            "admin",
            "metrics",
            "lint-workers",
            "http-handlers",
            "shard-ingest",
        }

    def test_query_and_metrics_are_self_parallel(self):
        parallel = {g.name for g in DEFAULT_CONFIG.groups if g.parallel}
        assert "query" in parallel
        assert "metrics" in parallel
        assert "http-handlers" in parallel
        assert "shard-ingest" in parallel
        assert "ingest" not in parallel

    def test_shard_drain_loop_is_in_the_single_writer_ingest_group(self):
        """The drain thread is the synopsis' one writer — it must live in
        the non-parallel `ingest` group, not a parallel one, or SKL205
        would see the synopsis RNG consumed from two concurrent groups."""
        ingest = next(g for g in DEFAULT_CONFIG.groups if g.name == "ingest")
        assert "repro.serve.shards.IngestShard._drain_loop" in ingest.patterns
        shard_ingest = next(
            g for g in DEFAULT_CONFIG.groups if g.name == "shard-ingest"
        )
        assert not any("_drain_loop" in p for p in shard_ingest.patterns)


class TestBaselineDeterminism:
    def _violations(self):
        sources = {
            "pkg/a.py": "x = 1\ny = 2\nz = 3\n",
            "pkg/b.py": "x = 1\nx = 1\n",
        }
        violations = [
            Violation("SKL001", "pkg/a.py", 1, 1, "first"),
            Violation("SKL001", "pkg/a.py", 3, 1, "third"),
            Violation("SKL002", "pkg/a.py", 2, 1, "second"),
            Violation("SKL001", "pkg/b.py", 1, 1, "dup line"),
            Violation("SKL001", "pkg/b.py", 2, 1, "dup line"),
        ]
        return violations, sources

    def test_permutation_invariant(self):
        violations, sources = self._violations()
        reference = render_baseline(violations, sources)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(violations)
            rng.shuffle(shuffled)
            assert render_baseline(shuffled, sources) == reference

    def test_trailing_newline_and_sorted_keys(self):
        violations, sources = self._violations()
        rendered = render_baseline(violations, sources)
        assert rendered.endswith("}\n")
        assert not rendered.endswith("\n\n")
        lines = [line.strip() for line in rendered.splitlines()]
        keys = [
            line.split('"')[1]
            for line in lines
            if line.startswith('"') and line.endswith("{")
            and line.split('"')[1] != "findings"
        ]
        assert len(keys) == 5
        assert keys == sorted(keys)

    def test_identical_lines_get_distinct_keys(self):
        violations, sources = self._violations()
        rendered = render_baseline(violations, sources)
        assert rendered.count('"dup line"') == 2


class TestParallelDriver:
    FILES = {
        "pkg/__init__.py": "",
        "pkg/clean.py": "def ok():\n    return 1\n",
        "pkg/broken.py": "def nope(:\n",
        "pkg/more.py": "VALUE = 3\n",
    }

    def _write(self, tmp_path):
        root = tmp_path / "tree"
        for rel, source in self.FILES.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return root

    def test_jobs_output_matches_serial(self, tmp_path):
        root = self._write(tmp_path)
        serial = lint_paths_with_sources([root], jobs=1)
        parallel = lint_paths_with_sources([root], jobs=2)
        assert parallel == serial
        violations, n_files, sources = serial
        assert n_files == len(self.FILES)
        assert any(v.rule == "SKL000" for v in violations)
        assert "pkg/clean.py" in " ".join(sources)

    def test_jobs_zero_means_cpu_count(self, tmp_path):
        root = self._write(tmp_path)
        assert lint_paths_with_sources([root], jobs=0) == lint_paths_with_sources(
            [root], jobs=1
        )

    def test_negative_jobs_is_a_usage_error(self, tmp_path):
        from tools.sketchlint.engine import LintUsageError

        root = self._write(tmp_path)
        with pytest.raises(LintUsageError):
            lint_paths_with_sources([root], jobs=-1)
