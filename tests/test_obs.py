"""Tests for the runtime observability layer (:mod:`repro.obs`).

Covers the instrument primitives, the registry/default-registry
machinery, both exporters, and — the load-bearing invariants — that the
:class:`NullRegistry` default changes no synopsis state and that a fully
instrumented ingest produces bit-identical counters and estimates.
"""

import json

import numpy as np
import pytest

from repro import SketchTree, SketchTreeConfig
from repro.core.snapshot import CheckpointManager
from repro.errors import ConfigError
from repro.obs import (
    BYTE_BUCKETS,
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_default_registry,
    set_default_registry,
    to_json_dict,
    to_prometheus_text,
    use_registry,
    write_json,
)
from repro.stream.engine import StreamProcessor
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=12, s2=3, max_pattern_edges=2, n_virtual_streams=13, seed=5
)

STREAM = [
    "(A (B) (C))",
    "(A (C) (B))",
    "(A (B (C)))",
    "(X (A (B)))",
    "(A (B) (B))",
    "(B (C))",
] * 3


def trees():
    return [from_sexpr(text) for text in STREAM]


def sketch_state(synopsis):
    return {
        residue: matrix.counters.copy()
        for residue, matrix in synopsis.streams.iter_sketches()
    }


class TestInstruments:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", help="a counter")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_pull_counter_reads_callback(self):
        registry = MetricsRegistry()
        state = {"n": 7}
        counter = registry.counter("c", fn=lambda: state["n"])
        state["n"] = 11
        assert counter.value == 11

    def test_gauge_set_and_pull(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5
        pulled = registry.gauge("p", fn=lambda: 42)
        assert pulled.value == 42.0

    def test_fn_reregistration_rebinds(self):
        # A restored synopsis must be able to take over its gauges.
        registry = MetricsRegistry()
        registry.gauge("g", fn=lambda: 1)
        assert registry.gauge("g", fn=lambda: 2).value == 2
        registry.counter("c", fn=lambda: 1)
        assert registry.counter("c", fn=lambda: 9).value == 9

    def test_instruments_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_le_semantics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 2.0, 10.0, 99.0):
            histogram.observe(value)
        # le semantics: an observation equal to a bound counts under it.
        assert histogram.cumulative() == [(1.0, 2), (10.0, 4), (float("inf"), 5)]
        assert histogram.count == 5
        assert histogram.total == pytest.approx(112.5)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError):
            registry.histogram("empty", buckets=())
        with pytest.raises(ConfigError):
            registry.histogram("unsorted", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            registry.histogram("dupes", buckets=(1.0, 1.0))

    def test_span_records_duration(self):
        registry = MetricsRegistry()
        with registry.span("latency"):
            pass
        histogram = registry.histogram("latency")
        assert histogram.count == 1
        assert histogram.total >= 0.0

    def test_bucket_presets_strictly_increasing(self):
        for preset in (LATENCY_BUCKETS, COUNT_BUCKETS, BYTE_BUCKETS):
            assert all(a < b for a, b in zip(preset, preset[1:]))


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        null.counter("c").inc(5)
        null.gauge("g").set(9)
        null.histogram("h").observe(1.0)
        with null.span("s"):
            pass
        assert null.counter("c").value == 0.0
        assert null.all_counters() == []
        assert null.all_gauges() == []
        assert null.all_histograms() == []

    def test_shared_instrument(self):
        null = NullRegistry()
        assert null.counter("a") is null.histogram("b")

    def test_module_default_is_null(self):
        assert get_default_registry() is NULL_REGISTRY
        assert NULL_REGISTRY.enabled is False


class TestDefaultRegistry:
    def test_set_returns_previous_and_none_restores(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            assert get_default_registry() is registry
        finally:
            assert set_default_registry(None) is registry
        assert get_default_registry() is NULL_REGISTRY
        set_default_registry(previous)

    def test_use_registry_restores_on_exit(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_default_registry() is registry
        assert get_default_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(registry):
                raise RuntimeError("boom")
        assert get_default_registry() is NULL_REGISTRY


class TestExporters:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("events_total", help="events seen").inc(12)
        registry.gauge("level", help="a level").set(0.75)
        histogram = registry.histogram("size", buckets=(1.0, 10.0))
        for value in (0.5, 3.0, 42.0):
            histogram.observe(value)
        return registry

    def test_prometheus_text_shape(self):
        text = to_prometheus_text(self.build_registry())
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 12" in text
        assert "repro_level 0.75" in text
        assert 'repro_size_bucket{le="1"} 1' in text
        assert 'repro_size_bucket{le="10"} 2' in text
        assert 'repro_size_bucket{le="+Inf"} 3' in text
        assert "repro_size_count 3" in text
        assert text.endswith("\n")

    def test_prometheus_bucket_counts_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (1e-6, 1e-4, 1e-2, 1.0, 100.0):
            histogram.observe(value)
        counts = [count for _, count in histogram.cumulative()]
        assert counts == sorted(counts)
        assert counts[-1] == histogram.count

    def test_prometheus_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.total").inc()
        assert "repro_weird_name_total 1" in to_prometheus_text(registry)

    def test_prometheus_escapes_help_text(self):
        """Regression: HELP strings with newlines or backslashes must be
        escaped per the exposition format (0.0.4), or the remainder of a
        multi-line help text parses as garbage sample lines."""
        registry = MetricsRegistry()
        registry.gauge(
            "depth", help="line one\nline two (bounded)"
        ).set(3)
        registry.counter("paths_total", help="matches C:\\trees\\*").inc(2)
        text = to_prometheus_text(registry)
        assert "# HELP repro_depth line one\\nline two (bounded)" in text
        assert "# HELP repro_paths_total matches C:\\\\trees\\\\*" in text
        assert "\nline two" not in text  # no raw newline leaked through

    def test_prometheus_text_parse_round_trip(self):
        """Every line of the exposition must scan as a comment or a
        sample, and un-escaping HELP recovers the original help text."""
        registry = self.build_registry()
        registry.gauge("tricky", help="a\\b\nc").set(1)
        helps = {}
        for line in to_prometheus_text(registry).splitlines():
            assert line, "no blank/garbage lines"
            if line.startswith("# HELP "):
                name, escaped = line[len("# HELP "):].split(" ", 1)
                helps[name] = (
                    escaped.replace("\\n", "\n").replace("\\\\", "\\")
                )
            elif line.startswith("# TYPE "):
                name, kind = line[len("# TYPE "):].split(" ")
                assert kind in ("counter", "gauge", "histogram")
            else:  # a sample: name{labels} value
                name, value = line.rsplit(" ", 1)
                float(value)
        assert helps["repro_tricky"] == "a\\b\nc"

    def test_json_dict_round_trips(self):
        payload = to_json_dict(self.build_registry())
        clone = json.loads(json.dumps(payload))
        assert clone["counters"]["events_total"] == 12
        assert clone["gauges"]["level"] == 0.75
        assert clone["histograms"]["size"]["count"] == 3
        assert clone["histograms"]["size"]["buckets"][-1][0] == "+Inf"

    def test_write_json(self, tmp_path):
        path = write_json(self.build_registry(), tmp_path / "metrics.json")
        assert json.loads(path.read_text())["counters"]["events_total"] == 12

    def test_empty_registry_exports(self):
        registry = MetricsRegistry()
        assert to_prometheus_text(registry) == ""
        assert to_json_dict(registry) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestIngestNeutrality:
    """Metrics never change estimates — the acceptance-critical invariant."""

    def test_enabled_ingest_bit_identical_to_disabled(self):
        disabled = SketchTree(CONFIG)
        enabled = SketchTree(CONFIG, metrics=MetricsRegistry())
        disabled.update_batch(trees())
        enabled.update_batch(trees())
        left, right = sketch_state(disabled), sketch_state(enabled)
        assert left.keys() == right.keys()
        for residue, counters in left.items():
            assert np.array_equal(counters, right[residue])
        for query in ["(A (B))", "(A (B) (C))", "(B (C))"]:
            assert disabled.estimate_ordered(query) == enabled.estimate_ordered(
                query
            )

    def test_topk_ingest_bit_identical(self):
        config = SketchTreeConfig(
            s1=12,
            s2=3,
            max_pattern_edges=2,
            n_virtual_streams=13,
            topk_size=3,
            seed=5,
        )
        registry = MetricsRegistry()
        disabled = SketchTree(config)
        enabled = SketchTree(config, metrics=registry)
        for tree in trees():
            disabled.update(tree)
            enabled.update(tree)
        assert {r: t.tracked for r, t in disabled.streams.iter_trackers()} == {
            r: t.tracked for r, t in enabled.streams.iter_trackers()
        }
        # The top-k churn instruments are registered and consistent.
        names = {c.name for c in registry.all_counters()}
        assert "topk_evictions_total" in names
        assert "topk_rearrivals_total" in names

    def test_ingest_instruments_populated(self):
        registry = MetricsRegistry()
        synopsis = SketchTree(CONFIG, metrics=registry)
        synopsis.update_batch(trees())
        counters = {c.name: c.value for c in registry.all_counters()}
        assert counters["ingest_values_total"] == synopsis.n_values
        assert (
            counters["encoder_cache_hits_total"]
            + counters["encoder_cache_misses_total"]
            == synopsis.n_values
        )
        gauges = {g.name: g.value for g in registry.all_gauges()}
        assert gauges["virtual_streams_allocated"] == synopsis.streams.n_allocated
        assert gauges["sketch_counter_l2_mass"] > 0
        histograms = {h.name: h for h in registry.all_histograms()}
        assert histograms["ingest_patterns_per_tree"].count == synopsis.n_trees

    def test_snapshot_round_trip_with_metrics(self):
        registry = MetricsRegistry()
        synopsis = SketchTree(CONFIG, metrics=registry)
        synopsis.update_batch(trees())
        restored = SketchTree.from_bytes(synopsis.to_bytes())
        # Metrics are not synopsis state: the restored copy attaches to
        # the process default (NULL), yet its counters are identical.
        assert restored.metrics.enabled is False
        left, right = sketch_state(synopsis), sketch_state(restored)
        for residue, counters in left.items():
            assert np.array_equal(counters, right[residue])
        # Re-attaching rebinds the pull gauges to the restored instance.
        restored.set_metrics(registry)
        gauges = {g.name: g.value for g in registry.all_gauges()}
        assert gauges["virtual_streams_allocated"] == restored.streams.n_allocated


class TestStreamAndSnapshotInstrumentation:
    def test_stream_processor_flush_metrics(self):
        registry = MetricsRegistry()
        processor = StreamProcessor(
            [SketchTree(CONFIG, metrics=registry)],
            batch_trees=4,
            metrics=registry,
        )
        stats = processor.run(trees())
        counters = {c.name: c.value for c in registry.all_counters()}
        assert counters["stream_trees_total"] == stats.n_trees
        histograms = {h.name: h for h in registry.all_histograms()}
        assert histograms["stream_batch_trees"].total == stats.n_trees
        assert histograms["stream_flush_seconds"].count > 0

    def test_checkpoint_manager_byte_metrics(self, tmp_path):
        registry = MetricsRegistry()
        manager = CheckpointManager(tmp_path, metrics=registry)
        synopsis = SketchTree(CONFIG)
        synopsis.update_batch(trees())
        path = manager.save(synopsis)
        manager.load_latest()
        counters = {c.name: c.value for c in registry.all_counters()}
        assert counters["snapshot_save_bytes_total"] == path.stat().st_size
        assert counters["snapshot_load_bytes_total"] == path.stat().st_size
        histograms = {h.name: h for h in registry.all_histograms()}
        assert histograms["snapshot_save_seconds"].count == 1
        assert histograms["snapshot_load_seconds"].count == 1

    def test_stream_checkpoint_span_recorded(self):
        registry = MetricsRegistry()
        processor = StreamProcessor(
            [SketchTree(CONFIG, metrics=registry)],
            checkpoint_every=6,
            on_checkpoint=lambda n: n,
            metrics=registry,
        )
        processor.run(trees())
        histograms = {h.name: h for h in registry.all_histograms()}
        assert histograms["stream_checkpoint_seconds"].count == len(STREAM) // 6


class TestCliStats:
    def test_stats_subcommand_prometheus(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "stats",
                "--dataset",
                "dblp",
                "--n-trees",
                "5",
                "--s1",
                "10",
                "--s2",
                "3",
                "--streams",
                "13",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "repro_ingest_values_total" in captured.out
        assert "repro_stream_trees_total 5" in captured.out
        assert "processed 5 trees" in captured.err

    def test_stats_subcommand_json_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.json"
        rc = main(
            [
                "stats",
                "--dataset",
                "dblp",
                "--n-trees",
                "5",
                "--s1",
                "10",
                "--s2",
                "3",
                "--streams",
                "13",
                "--format",
                "json",
                "--out",
                str(out),
            ]
        )
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["counters"]["stream_trees_total"] == 5
