"""Smoke + invariant tests for every experiment module (SMOKE scale)."""

import math

import pytest

from repro.experiments import SMOKE
from repro.experiments import (
    ablations,
    cost,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table1,
)
from repro.experiments.data import auto_buckets, buckets_for, prepared
from repro.experiments.report import format_bucket, format_percent, format_table


class TestData:
    def test_prepared_cached(self):
        a = prepared("treebank", SMOKE)
        b = prepared("treebank", SMOKE)
        assert a is b

    def test_unknown_dataset(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            prepared("imdb", SMOKE)

    def test_buckets_for(self):
        assert len(buckets_for("treebank")) == 4
        assert len(buckets_for("dblp")) == 4

    def test_auto_buckets_cover_values(self):
        values = [1e-5, 3e-5, 2e-4, 9e-4]
        buckets = auto_buckets(values, n_buckets=4)
        assert len(buckets) == 4
        for value in values:
            assert any(low <= value < high for low, high in buckets)

    def test_auto_buckets_requires_positive(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            auto_buckets([0.0, -1.0])


class TestReport:
    def test_format_bucket(self):
        assert format_bucket((1e-5, 2e-5)) == "[1.0e-05, 2.0e-05)"

    def test_format_percent(self):
        assert format_percent(0.152) == "15.2%"
        assert format_percent(float("nan")) == "-"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, float("nan")]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[2]) or True for line in lines)
        assert "-" in text  # NaN rendering


class TestTable1:
    def test_rows_and_invariants(self):
        result = table1.run(SMOKE)
        assert len(result.rows) == 2
        by_name = {row.dataset: row for row in result.rows}
        assert by_name["TREEBANK"].n_trees == SMOKE.treebank_trees
        assert by_name["DBLP"].max_pattern_size == SMOKE.dblp_k
        for row in result.rows:
            assert row.n_distinct_patterns <= row.n_occurrences
            assert row.self_join_size >= row.n_occurrences
        # TREEBANK deep/narrow vs DBLP shallow/bushy.
        assert by_name["TREEBANK"].mean_depth > by_name["DBLP"].mean_depth
        assert by_name["DBLP"].mean_fanout > by_name["TREEBANK"].mean_fanout
        assert "Table 1" in table1.render(result)


class TestFig08:
    @pytest.mark.parametrize("dataset", ["treebank", "dblp"])
    def test_workload_histogram(self, dataset):
        result = fig08.run(dataset, SMOKE)
        assert len(result.buckets) == 4
        assert result.n_queries > 0
        for bucket in result.buckets:
            if bucket.n_queries:
                assert bucket.min_count <= bucket.max_count
        assert "Figure 8" in fig08.render(result)


class TestFig09:
    def test_enumtree_linearity(self):
        result = fig09.run("treebank", SMOKE)
        assert len(result.points) == SMOKE.treebank_k
        counts = [p.n_patterns for p in result.points]
        assert counts == sorted(counts)  # more k -> more patterns
        # Linearity claim: per-pattern cost stays within a small factor.
        rates = [
            p.microseconds_per_pattern for p in result.points if p.n_patterns > 500
        ]
        if len(rates) >= 2:
            assert max(rates) < 8 * min(rates)
        assert "Figure 9" in fig09.render(result)


class TestFig10:
    def test_topk_improves_accuracy(self):
        result = fig10.run("treebank", s1=25, scale=SMOKE)
        assert len(result.points) == len(SMOKE.topk_sizes)
        # Memory grows with top-k.
        memories = [p.memory_bytes for p in result.points]
        assert memories == sorted(memories)
        # Error at the largest top-k <= error with none, for the least
        # selective bucket (the most stable one).
        series = result.errors_for_bucket(len(result.points[0].bucket_errors) - 1)
        finite = [e for e in series if not math.isnan(e)]
        if len(finite) >= 2:
            assert finite[-1] <= finite[0] * 1.25
        assert "Figure 10" in fig10.render(result)


class TestFig11:
    @pytest.mark.parametrize("kind", ["sum", "product"])
    def test_composite_histograms(self, kind):
        result = fig11.run(kind, SMOKE)
        assert result.n_queries > 0
        assert "Figure 11" in fig11.render(result)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            fig11.composite_workload("quotient", SMOKE)


class TestFig12:
    def test_sum_runs(self):
        result = fig12.run("sum", s1=25, scale=SMOKE)
        assert len(result.points) == len(SMOKE.topk_sizes)
        assert result.overall_mean_error() >= 0
        assert "Figure 12" in fig12.render(result)

    def test_product_error_exceeds_sum_error(self):
        # Section 7.9.2: PRODUCT errors are larger than SUM errors.
        sum_result = fig12.run("sum", s1=25, scale=SMOKE)
        product_result = fig12.run("product", s1=25, scale=SMOKE)
        assert (
            product_result.overall_mean_error() > sum_result.overall_mean_error()
        )


class TestAppendixXMark:
    def test_runs_and_interpolates(self):
        from repro.experiments import appendix_xmark

        result = appendix_xmark.run(s1=30, scale=SMOKE)
        assert result.shapes.depth_interpolates()
        assert result.shapes.fanout_interpolates()
        assert len(result.accuracy.points) == len(SMOKE.topk_sizes)
        assert "XMark" in appendix_xmark.render(result)

    def test_xmark_dataset_registered(self):
        from repro.experiments.data import ALL_DATASETS, buckets_for, generator_for

        assert "xmark" in ALL_DATASETS
        assert len(buckets_for("xmark")) == 4
        assert next(iter(generator_for("xmark").generate(1))) is not None


class TestCost:
    def test_ratios(self):
        result = cost.run("treebank", SMOKE, n_trees=25)
        s1_low, s1_high = SMOKE.treebank_s1
        ratio = result.s1_ratio(s1_low, s1_high, 1)
        assert ratio > 0.8  # larger s1 must not be dramatically cheaper
        assert "ratio" in cost.render(result)


class TestAblations:
    def test_virtual_streams_reduce_error(self):
        result = ablations.run_virtual_streams(
            SMOKE, stream_counts=(1, 31), s1=30
        )
        errors = {p.n_streams: p.mean_error for p in result.points}
        assert errors[31] < errors[1]
        assert "Virtual Streams" in ablations.render_virtual_streams(result)

    def test_countsketch_comparable(self):
        result = ablations.run_countsketch(SMOKE, s1=30)
        assert result.ams_mean_error >= 0
        assert result.countsketch_mean_error >= 0
        assert "CountSketch" in ablations.render_countsketch(result)

    def test_mapping_collision_free(self):
        result = ablations.run_mapping(SMOKE)
        assert result.pairing_collisions == 0
        assert result.rabin_collisions <= 2
        assert result.rabin_max_value_bits <= 31
        assert result.pairing_max_value_bits > 31  # pairing blows past a word
        assert "Mapping" in ablations.render_mapping(result)

    def test_sum_estimator_not_worse(self):
        result = ablations.run_sum_estimator(SMOKE, s1=30)
        assert result.combined_mean_error <= result.naive_mean_error * 1.5
        assert "Sum Estimator" in ablations.render_sum_estimator(result)

    def test_xi_family_comparable(self):
        result = ablations.run_xi_family(SMOKE, s1=30)
        assert result.polynomial_mean_error >= 0
        assert result.bch_mean_error >= 0
        assert "Xi Family" in ablations.render_xi_family(result)

    def test_self_join_reduction(self):
        result = ablations.run_self_join(SMOKE, s1=30, topk=4)
        off, on = result.points
        assert on.true_residual_self_join <= off.true_residual_self_join
        assert "Self-Join" in ablations.render_self_join(result)

    def test_query_size_gradient(self):
        result = ablations.run_query_size(SMOKE, s1=30, topk=4, per_size=10)
        assert len(result.points) >= 2
        # Larger patterns are rarer: mean actual counts decline with size.
        actuals = [p.mean_actual for p in result.points]
        assert actuals[-1] < actuals[0]
        assert "Query Size" in ablations.render_query_size(result)

    def test_export_xml_roundtrip(self, tmp_path):
        from repro.experiments.data import export_xml
        from repro.trees import parse_forest

        path = tmp_path / "stream.xml"
        count = export_xml("dblp", path, SMOKE)
        assert count == SMOKE.dblp_trees
        assert len(parse_forest(path.read_text())) == count

    def test_stream_scaling_bounded(self):
        result = ablations.run_stream_scaling(
            SMOKE, s1=30, fractions=(0.5, 1.0)
        )
        assert len(result.points) == 2
        assert result.points[0].n_trees < result.points[1].n_trees
        assert "Stream Scaling" in ablations.render_stream_scaling(result)

    def test_false_positives_bounded(self):
        result = ablations.run_false_positives(SMOKE, s1=30, n_phantoms=80)
        assert 0 <= result.false_frequent_rate <= 1
        assert result.mean_absolute_estimate >= 0
        assert "Phantom" in ablations.render_false_positives(result)
