"""The fixed counterparts of every SKL30x bad fixture: zero findings."""

import numpy as np


class Batch:
    def __init__(self, values, counts):
        self.values = values
        self.counts = counts


def total_and_peak(values):
    squares = [v * v for v in values]  # materialised: re-iterable
    return sum(squares), max(squares)


def ingest_vectorised(batch: Batch) -> int:
    return int(np.sum(batch.values))  # one vectorised reduction


def ingest_concat_once(chunks):
    parts = list(chunks)
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def ingest_hoisted_alloc(rows, width):
    scratch = np.zeros(width)  # hoisted out of the loop
    total = 0
    for row in rows:
        total += int(scratch.sum() + row)
    return total


def ingest_hoisted_chain(self_like, rows):
    scale = self_like.config.scale  # hoisted local
    total = 0
    for row in rows:
        total += row * scale
        total -= scale
    return total


def convert_once(rows):
    return np.asarray(rows, dtype=np.float64)  # one conversion per batch


def ingest_batched_obs(histogram, values):
    histogram.observe_batch(values)  # one lock per batch


def ingest_try_outside(rows):
    try:
        return [int(row) for row in rows]
    except ValueError:
        return []
