"""Triggers SKL301: a generator expression consumed by two passes."""


def total_and_peak(values):
    squares = (v * v for v in values)
    total = sum(squares)
    return total, max(squares)  # squares is already exhausted here
