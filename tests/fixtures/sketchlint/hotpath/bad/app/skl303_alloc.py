"""Triggers SKL303: allocation / invariant recomputation inside a hot loop."""

import numpy as np


def ingest_concat(chunks):
    acc = np.zeros(4, dtype=np.int64)
    for chunk in chunks:
        acc = np.concatenate([acc, chunk])  # O(n^2) growth
    return acc


def ingest_invariant_alloc(rows, width):
    total = 0
    for row in rows:
        scratch = np.zeros(width)  # same allocation every iteration
        total += int(scratch.sum() + row)
    return total


def ingest_repeated_chain(self_like, rows):
    total = 0
    for row in rows:
        total += row * self_like.config.scale  # invariant chain, read twice
        total -= self_like.config.scale
    return total
