"""Triggers SKL305: per-element observability in the innermost loop."""


def ingest_observe(histogram, values):
    for value in values:
        histogram.observe(value)  # instrument lock per element


def ingest_lookup(obs, values):
    for value in values:
        obs.counter("ingested_total").inc()  # registry probe per element


def ingest_try(rows):
    out = []
    for row in rows:
        try:
            out.append(int(row))
        except ValueError:
            continue
    return out
