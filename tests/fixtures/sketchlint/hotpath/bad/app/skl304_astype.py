"""Triggers SKL304: ndarray copy / dtype churn on a hot path."""

import numpy as np


def ingest_astype_loop(rows):
    out = []
    for row in rows:
        out.append(row.astype(np.float64))  # one full copy per element
    return out


def round_trip(arr):
    return (arr.astype(np.float64) / 2).astype(np.int64)


def fancy_then_astype(arr, index):
    return arr[index].astype(np.float64)
