"""Triggers SKL302: element-wise Python loops over columnar ndarray data."""


class Batch:
    def __init__(self, values, counts):
        self.values = values
        self.counts = counts


def ingest_tolist(batch: Batch) -> int:
    total = 0
    for value in batch.values.tolist():
        total += value
    return total


def ingest_columns(batch: Batch) -> int:
    total = 0
    for value in batch.values:
        total += int(value)
    return total
