"""Triggers SKL003 exactly once: mutable default argument."""


def collect(values, into=[]):
    into.extend(values)
    return into
