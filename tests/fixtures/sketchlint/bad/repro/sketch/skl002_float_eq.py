"""Triggers SKL002 exactly once: float equality in estimator code."""


def estimate_matches(estimate: float) -> bool:
    return estimate == 1.0
