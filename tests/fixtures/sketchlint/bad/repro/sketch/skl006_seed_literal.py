"""Triggers SKL006 exactly once: hard-coded seed literal at a call site."""


def build_generator(factory):
    return factory(independence=4, seed=12345)
