"""Triggers SKL004 exactly once: wall-clock time in a measured section."""

import time


def measure(fn) -> float:
    start = time.time()
    fn()
    return time.perf_counter() - start
