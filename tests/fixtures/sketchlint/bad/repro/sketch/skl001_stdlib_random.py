"""Triggers SKL001 exactly once: stdlib random imported in a hot path."""

import random


def draw(seed: int) -> float:
    return random.Random(seed).random()
