"""Triggers SKL008 exactly once: RNG constructed at module import time."""

import numpy as np

_RNG = np.random.default_rng(7)


def draw() -> float:
    return float(_RNG.random())
