"""Triggers SKL005 exactly once: bare except in the stream engine."""


def feed(consumer, tree):
    try:
        consumer.update(tree)
    except:
        return False
    return True
