"""Triggers SKL007 exactly once: inner-loop class without __slots__."""


class PatternNode:
    def __init__(self, label: str) -> None:
        self.label = label
        self.children: list["PatternNode"] = []
