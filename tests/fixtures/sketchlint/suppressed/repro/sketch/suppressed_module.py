"""A violation on every line is silenced by an inline disable comment."""

import random  # sketchlint: disable=SKL001


def draw_legacy(seed: int) -> float:
    return random.Random(seed).random()


def build(factory):
    return factory(seed=999)  # sketchlint: disable=SKL006
