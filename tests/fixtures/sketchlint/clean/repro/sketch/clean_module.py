"""Triggers no sketchlint rule: the patterns the codebase should follow."""

import math
import time

import numpy as np


def build_generator(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def estimate_matches(estimate: float, expected: float) -> bool:
    return math.isclose(estimate, expected, rel_tol=1e-9)


def collect(values, into=None):
    if into is None:
        into = []
    into.extend(values)
    return into


def measure(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def feed(consumer, tree) -> bool:
    try:
        consumer.update(tree)
    except ValueError:
        return False
    return True
