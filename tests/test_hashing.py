"""Tests for pairing functions, GF(2) arithmetic, Rabin fingerprints."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import HashingError
from repro.hashing import (
    LabelHasher,
    RabinFingerprint,
    gf2_degree,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mulmod,
    is_irreducible,
    pair2,
    pair_sequence,
    random_irreducible,
    unpair2,
    unpair_sequence,
)
from repro.hashing.pairing import fold_to_width


class TestPairing:
    def test_paper_formula(self):
        # PF2(x, y) = (x^2 + 2xy + y^2 + 3x + y) / 2, verified directly.
        for x in range(6):
            for y in range(6):
                assert pair2(x, y) == (x * x + 2 * x * y + y * y + 3 * x + y) // 2

    def test_is_bijection_on_small_grid(self):
        values = {pair2(x, y) for x in range(40) for y in range(40)}
        assert len(values) == 1600

    def test_rejects_negative(self):
        with pytest.raises(HashingError):
            pair2(-1, 0)
        with pytest.raises(HashingError):
            unpair2(-1)

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_unpair_inverts_pair(self, x, y):
        assert unpair2(pair2(x, y)) == (x, y)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=6))
    def test_sequence_roundtrip(self, values):
        assert unpair_sequence(pair_sequence(values)) == tuple(values)

    def test_sequences_of_different_lengths_never_collide(self):
        # (0,) vs (0, 0) vs (0, 0, 0): padding-free length disambiguation.
        codes = {pair_sequence((0,) * n) for n in range(1, 6)}
        assert len(codes) == 5

    def test_empty_sequence_rejected(self):
        with pytest.raises(HashingError):
            pair_sequence(())

    def test_doubly_exponential_growth_guarded(self):
        # ~30 x 31-bit elements would need a >1-gigabit integer; the fold
        # must fail fast instead of hanging (Section 6.1's motivation).
        with pytest.raises(HashingError):
            pair_sequence([2**30] * 30)

    def test_fold_to_width(self):
        big = pair_sequence((10**6, 10**6, 10**6))
        folded = fold_to_width(big, bits=61)
        assert 0 <= folded < (1 << 61) - 1


class TestGf2:
    def test_degree(self):
        assert gf2_degree(0) == -1
        assert gf2_degree(1) == 0
        assert gf2_degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2).
        assert gf2_mul(0b11, 0b11) == 0b101

    def test_mod_known(self):
        # x^3 mod (x^2 + 1) = x  (since x^3 = x(x^2+1) + x).
        assert gf2_mod(0b1000, 0b101) == 0b10

    def test_mulmod_matches_mul_then_mod(self):
        modulus = 0b10011  # x^4 + x + 1 (irreducible)
        for a in range(1, 16):
            for b in range(1, 16):
                assert gf2_mulmod(a, b, modulus) == gf2_mod(gf2_mul(a, b), modulus)

    def test_gcd(self):
        # gcd((x+1)^2, (x+1)x) = x+1.
        a = gf2_mul(0b11, 0b11)
        b = gf2_mul(0b11, 0b10)
        assert gf2_gcd(a, b) == 0b11

    def test_mod_by_zero_rejected(self):
        with pytest.raises(HashingError):
            gf2_mod(0b101, 0)

    @pytest.mark.parametrize(
        "poly,expected",
        [
            (0b111, True),        # x^2 + x + 1: the only irreducible quadratic
            (0b101, False),       # x^2 + 1 = (x+1)^2
            (0b1011, True),       # x^3 + x + 1
            (0b1101, True),       # x^3 + x^2 + 1
            (0b1111, False),      # x^3 + x^2 + x + 1 = (x+1)(x^2+1)
            (0b10011, True),      # x^4 + x + 1
            (0b11111, True),      # x^4 + x^3 + x^2 + x + 1
            (0b10101, False),     # x^4 + x^2 + 1 = (x^2+x+1)^2
            (0b100011011, True),  # x^8 + x^4 + x^3 + x + 1 (AES polynomial)
        ],
    )
    def test_is_irreducible_known_cases(self, poly, expected):
        assert is_irreducible(poly) is expected

    def test_irreducible_count_degree_4(self):
        # There are exactly 3 irreducible polynomials of degree 4 over GF(2).
        count = sum(
            1 for candidate in range(16, 32) if is_irreducible(candidate)
        )
        assert count == 3

    def test_random_irreducible_deterministic(self):
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        assert random_irreducible(31, rng_a) == random_irreducible(31, rng_b)

    def test_random_irreducible_accepts_int_seed(self):
        assert random_irreducible(31, 5) == random_irreducible(
            31, np.random.default_rng(5)
        )

    def test_random_irreducible_unseeded_default_is_reproducible(self):
        # None falls back to repro.core.config.DEFAULT_SEED, never OS entropy.
        assert random_irreducible(31) == random_irreducible(31)

    def test_random_irreducible_has_requested_degree(self):
        poly = random_irreducible(16, np.random.default_rng(1))
        assert gf2_degree(poly) == 16
        assert is_irreducible(poly)

    def test_random_irreducible_rejects_degree_zero(self):
        with pytest.raises(HashingError):
            random_irreducible(0)


class TestRabinFingerprint:
    def test_deterministic_given_seed(self):
        a, b = RabinFingerprint(seed=3), RabinFingerprint(seed=3)
        assert a.poly == b.poly
        assert a.of_bytes(b"hello") == b.of_bytes(b"hello")

    def test_different_seeds_different_polys(self):
        assert RabinFingerprint(seed=1).poly != RabinFingerprint(seed=2).poly

    def test_table_feed_matches_direct_mod(self):
        # Feeding bytes through the CRC-style table must equal reducing the
        # whole bit string at once.
        fp = RabinFingerprint(seed=7)
        data = bytes(range(40))
        as_int = int.from_bytes(data, "big")
        assert fp.of_bytes(data) == gf2_mod(as_int, fp.poly)

    def test_values_bounded_by_degree(self):
        fp = RabinFingerprint(seed=0, degree=31)
        for payload in (b"", b"x", bytes(100)):
            assert 0 <= fp.of_bytes(payload) < (1 << 31)

    def test_of_sequence_length_prefixed(self):
        fp = RabinFingerprint(seed=1)
        assert fp.of_sequence([0]) != fp.of_sequence([0, 0])

    def test_of_ints_rejects_out_of_range(self):
        fp = RabinFingerprint(seed=1)
        with pytest.raises(HashingError):
            fp.of_ints([1 << 32])
        with pytest.raises(HashingError):
            fp.of_ints([-1])

    def test_explicit_poly_validated(self):
        with pytest.raises(HashingError):
            RabinFingerprint(poly=0b100000001)  # x^8 + 1 is reducible

    def test_small_degree_rejected(self):
        with pytest.raises(HashingError):
            RabinFingerprint(poly=0b111)  # degree 2 < 8

    def test_collision_rate_on_random_sequences(self):
        fp = RabinFingerprint(seed=11)
        rng = random.Random(0)
        seqs = {
            tuple(rng.randrange(1 << 20) for _ in range(rng.randrange(1, 8)))
            for _ in range(3000)
        }
        prints = {fp.of_sequence(list(s)) for s in seqs}
        # Expected collisions ~ |S|^2 * len / 2^32 << 1; allow a couple.
        assert len(seqs) - len(prints) <= 2

    @given(st.binary(max_size=50), st.binary(max_size=50))
    def test_streaming_concatenation(self, a, b):
        fp = RabinFingerprint(seed=5)
        assert fp.of_bytes(a + b) == fp.of_bytes(b, state=fp.of_bytes(a))


class TestLabelHasher:
    def test_rabin_mode_deterministic(self):
        a, b = LabelHasher("rabin", seed=4), LabelHasher("rabin", seed=4)
        assert a("NP") == b("NP")

    def test_rabin_mode_cached(self):
        hasher = LabelHasher("rabin", seed=4)
        first = hasher("VP")
        assert hasher("VP") == first
        assert hasher.n_labels_seen == 1

    def test_enumerate_mode_sequential(self):
        hasher = LabelHasher("enumerate")
        assert hasher("A") == 0
        assert hasher("B") == 1
        assert hasher("A") == 0

    def test_unknown_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LabelHasher("md5")

    def test_distinct_labels_distinct_hashes(self):
        hasher = LabelHasher("rabin", seed=9)
        labels = [f"tag_{i}" for i in range(500)]
        assert len({hasher(label) for label in labels}) == 500
