"""Tests for sketchlint's whole-project semantic phase (SKL101-SKL105),
the baseline file, SARIF output and the reworked CLI exit codes.

Fixture mini-projects are written to ``tmp_path`` from inline dicts: the
semantic phase designates its sources and sinks by qualified name
(``repro.hashing.pairing``, ``repro.core.config``, …), so each fixture
recreates the package paths it needs.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tools.sketchlint.baseline import (
    finding_keys,
    load_baseline,
    render_baseline,
    split_baselined,
)
from tools.sketchlint.semantic import analyze_paths, analyze_project
from tools.sketchlint.semantic.callgraph import CallGraph
from tools.sketchlint.semantic.model import ProjectModel
from tools.sketchlint.suppress import Suppressions
from tools.sketchlint.violations import Violation

REPO_ROOT = Path(__file__).resolve().parent.parent

PAIRING = """
def pair2(x, y):
    return (x + y) * (x + y + 1) // 2 + y

def pair_sequence(values):
    out = 0
    for v in values:
        out = pair2(out, v)
    return out

def fold_to_width(value, bits):
    return value % (1 << bits)
"""

CONFIG = """
DEFAULT_SEED = 0
XI_SEED_OFFSET = 101
"""

AMS = """
import numpy as np


class SketchMatrix:
    def __init__(self, s1, s2):
        self.counters = np.zeros((s2, s1), dtype=np.int64)

    def update_batch(self, values, counts):
        values = np.asarray(values, dtype=np.int64)
        self.counters[0, :] += values * counts

    def estimate_batch(self, values):
        values = np.asarray(values, dtype=np.int64)
        return self.counters[0, values % self.counters.shape[1]]
"""


def write_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialise ``relative path -> source`` as a package tree."""
    root = tmp_path / "proj"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        # Every ancestor directory under the root is a package.
        for parent in path.parents:
            if parent == root:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


def rules_of(violations):
    return sorted({v.rule for v in violations})


class TestProjectModel:
    def test_reexport_resolution_through_init(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/sketch/xi.py": (
                    "class XiGenerator:\n"
                    "    def __init__(self, seed):\n"
                    "        self.seed = seed\n"
                ),
                "repro/sketch/__init__.py": "from repro.sketch.xi import XiGenerator\n",
                "repro/__init__.py": "from repro.sketch import XiGenerator\n",
                "repro/use.py": (
                    "from repro import XiGenerator\n"
                    "def make():\n"
                    "    return XiGenerator(seed=1)\n"
                ),
            },
        )
        files = [(p, p.read_text()) for p in sorted(root.rglob("*.py"))]
        model = ProjectModel.build(files)
        # The two-level alias chain collapses to the defining qualname.
        assert (
            model.canonical("repro.XiGenerator")
            == "repro.sketch.xi.XiGenerator"
        )
        use = model.modules["repro.use"]
        assert (
            model.resolve(use, "XiGenerator") == "repro.sketch.xi.XiGenerator"
        )
        # And the call graph lands on the re-exported class's __init__.
        graph = CallGraph.build(model)
        callees = {s.callee for s in graph.callees("repro.use.make")}
        assert "repro.sketch.xi.XiGenerator.__init__" in callees

    def test_relative_imports_resolve(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/a.py": "def helper():\n    return 1\n",
                "repro/b.py": (
                    "from . import a\n"
                    "from .a import helper\n"
                    "def caller():\n"
                    "    return helper() + a.helper()\n"
                ),
            },
        )
        files = [(p, p.read_text()) for p in sorted(root.rglob("*.py"))]
        model = ProjectModel.build(files)
        graph = CallGraph.build(model)
        callees = [s.callee for s in graph.callees("repro.b.caller")]
        assert callees.count("repro.a.helper") == 2

    def test_call_graph_reachability_chain(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/snapshot.py": (
                    "from repro.core.io import write_payload\n"
                    "def save_snapshot(tree, path):\n"
                    "    write_payload(tree, path)\n"
                ),
                "repro/core/io.py": (
                    "from repro.core.codec import encode\n"
                    "def write_payload(tree, path):\n"
                    "    return encode(tree)\n"
                ),
                "repro/core/codec.py": "def encode(tree):\n    return b''\n",
                "repro/core/unrelated.py": "def island():\n    return 0\n",
            },
        )
        files = [(p, p.read_text()) for p in sorted(root.rglob("*.py"))]
        model = ProjectModel.build(files)
        graph = CallGraph.build(model)
        chains = graph.reachable_from(["repro.core.snapshot.save_snapshot"])
        assert chains["repro.core.codec.encode"] == [
            "repro.core.snapshot.save_snapshot",
            "repro.core.io.write_payload",
            "repro.core.codec.encode",
        ]
        assert "repro.core.unrelated.island" not in chains

    def test_method_resolution_via_annotation_and_constructor(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/sketch/ams.py": AMS,
                "repro/use.py": (
                    "from repro.sketch.ams import SketchMatrix\n"
                    "def annotated(sketch: SketchMatrix):\n"
                    "    sketch.update_batch([1], [1])\n"
                    "def constructed():\n"
                    "    local = SketchMatrix(4, 2)\n"
                    "    local.update_batch([1], [1])\n"
                    "def untyped(sketch):\n"
                    "    sketch.update_batch([1], [1])\n"
                ),
            },
        )
        files = [(p, p.read_text()) for p in sorted(root.rglob("*.py"))]
        model = ProjectModel.build(files)
        graph = CallGraph.build(model)
        target = "repro.sketch.ams.SketchMatrix.update_batch"
        assert target in {s.callee for s in graph.callees("repro.use.annotated")}
        assert target in {s.callee for s in graph.callees("repro.use.constructed")}
        # Unknown receivers get no edge: under-approximation by design.
        assert target not in {s.callee for s in graph.callees("repro.use.untyped")}


class TestSKL101:
    def test_mutation_unreduced_pairing_into_update_batch(self, tmp_path):
        """Acceptance mutation: a raw pairing value batched into int64."""
        root = write_project(
            tmp_path,
            {
                "repro/hashing/pairing.py": PAIRING,
                "repro/sketch/ams.py": AMS,
                "repro/use.py": (
                    "from repro.hashing.pairing import pair2\n"
                    "from repro.sketch.ams import SketchMatrix\n"
                    "def mutated(sketch: SketchMatrix, a, b):\n"
                    "    code = pair2(a, b)\n"
                    "    sketch.update_batch([code], [1])\n"
                ),
            },
        )
        violations = analyze_paths([root])
        assert rules_of(violations) == ["SKL101"]
        (violation,) = violations
        assert "values" in violation.message
        assert "update_batch" in violation.message

    def test_direct_asarray_narrowing(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/hashing/pairing.py": PAIRING,
                "repro/enc.py": (
                    "import numpy as np\n"
                    "from repro.hashing.pairing import pair_sequence\n"
                    "def narrow(values):\n"
                    "    code = pair_sequence(values)\n"
                    "    return np.asarray([code], dtype=np.int64)\n"
                ),
            },
        )
        assert rules_of(analyze_paths([root])) == ["SKL101"]

    def test_reduced_flow_is_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/hashing/pairing.py": PAIRING,
                "repro/sketch/ams.py": AMS,
                "repro/use.py": (
                    "from repro.hashing.pairing import pair2, fold_to_width\n"
                    "from repro.sketch.ams import SketchMatrix\n"
                    "def reduced(sketch: SketchMatrix, a, b):\n"
                    "    code = fold_to_width(pair2(a, b), 31)\n"
                    "    sketch.update_batch([code], [1])\n"
                    "def modded(sketch: SketchMatrix, a, b):\n"
                    "    code = pair2(a, b) % (2**31 - 1)\n"
                    "    sketch.update_batch([code], [1])\n"
                ),
            },
        )
        assert analyze_paths([root]) == []

    def test_big_dict_keys_do_not_poison_values_slot(self, tmp_path):
        """update_counts-style precision: keys are reduced inside the
        callee, only the *values* slot is narrowed — big keys are fine."""
        root = write_project(
            tmp_path,
            {
                "repro/hashing/pairing.py": PAIRING,
                "repro/sketch/cs.py": (
                    "import numpy as np\n"
                    "P = 2**31 - 1\n"
                    "class CountSketch:\n"
                    "    def update_counts(self, counts_by_value):\n"
                    "        values = np.fromiter(\n"
                    "            (v % P for v in counts_by_value), dtype=np.int64,\n"
                    "            count=len(counts_by_value),\n"
                    "        )\n"
                    "        counts = np.fromiter(\n"
                    "            counts_by_value.values(), dtype=np.int64,\n"
                    "            count=len(counts_by_value),\n"
                    "        )\n"
                    "        return values, counts\n"
                ),
                "repro/use.py": (
                    "from repro.hashing.pairing import pair2\n"
                    "from repro.sketch.cs import CountSketch\n"
                    "def ok(sketch: CountSketch, a, b):\n"
                    "    table = {pair2(a, b): 3}\n"
                    "    sketch.update_counts(table)\n"
                    "def bad(sketch: CountSketch, a, b):\n"
                    "    table = {7: pair2(a, b)}\n"
                    "    sketch.update_counts(table)\n"
                ),
            },
        )
        violations = analyze_paths([root])
        assert rules_of(violations) == ["SKL101"]
        (violation,) = violations
        assert violation.line == 8  # only the call with the big-*values* table


class TestSKL102:
    def test_mutation_seed_laundered_through_helper(self, tmp_path):
        """Acceptance mutation: random.Random(0) laundered via a helper
        module, then used to seed the ξ generator / np RNG."""
        root = write_project(
            tmp_path,
            {
                "repro/core/config.py": CONFIG,
                "repro/sketch/xi.py": (
                    "class XiGenerator:\n"
                    "    def __init__(self, n, seed):\n"
                    "        self.n = n\n"
                    "        self.seed = seed\n"
                ),
                "repro/experiments/helper.py": (
                    "import random\n"
                    "def make_seed():\n"
                    "    return random.Random(0).random()\n"
                ),
                "repro/experiments/run.py": (
                    "import numpy as np\n"
                    "from repro.experiments.helper import make_seed\n"
                    "from repro.sketch.xi import XiGenerator\n"
                    "def mutated_rng():\n"
                    "    return np.random.default_rng(make_seed())\n"
                    "def mutated_xi():\n"
                    "    return XiGenerator(8, seed=make_seed())\n"
                ),
            },
        )
        violations = analyze_paths([root], select=["SKL102"])
        assert [v.rule for v in violations] == ["SKL102", "SKL102"]
        lines = {v.line for v in violations}
        assert lines == {5, 7}  # both the np RNG and the ξ constructor

    def test_config_seed_is_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/config.py": CONFIG,
                "repro/experiments/run.py": (
                    "import numpy as np\n"
                    "from repro.core.config import DEFAULT_SEED, XI_SEED_OFFSET\n"
                    "def good_rng():\n"
                    "    return np.random.default_rng(DEFAULT_SEED ^ XI_SEED_OFFSET)\n"
                    "def derived(offset):\n"
                    "    return np.random.default_rng(DEFAULT_SEED + offset)\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL102"]) == []


class TestSKL103:
    def test_pickle_and_nondeterminism_reachable(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/snapshot.py": (
                    "from repro.core.codec import encode\n"
                    "def save_snapshot(tree, path):\n"
                    "    return encode(tree)\n"
                ),
                "repro/core/codec.py": (
                    "import time\n"
                    "def encode(tree):\n"
                    "    import pickle\n"
                    "    stamp = time.time()\n"
                    "    return pickle.dumps((stamp, tree))\n"
                ),
            },
        )
        violations = analyze_paths([root], select=["SKL103"])
        messages = " | ".join(v.message for v in violations)
        assert "'pickle' imported inside" in messages
        assert "pickle.dumps" in messages
        assert "nondeterministic call time.time" in messages
        # Sample chains report how the sink is reached.
        assert "repro.core.snapshot.save_snapshot -> repro.core.codec.encode" in messages

    def test_module_level_pickle_in_reachable_module(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/snapshot.py": (
                    "from repro.core.tree import to_bytes\n"
                    "def save_snapshot(tree):\n"
                    "    return to_bytes(tree)\n"
                ),
                "repro/core/tree.py": (
                    "import pickle\n"
                    "def to_bytes(tree):\n"
                    "    return b''\n"
                ),
            },
        )
        violations = analyze_paths([root], select=["SKL103"])
        assert any("module-level import of 'pickle'" in v.message for v in violations)

    def test_quarantined_pickle_and_fsync_are_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/snapshot.py": (
                    "import os\n"
                    "def save_snapshot(tree, path):\n"
                    "    tmp = f'{path}.{os.getpid()}.tmp'\n"
                    "    os.replace(tmp, path)\n"
                    "    return tmp\n"
                ),
                "repro/core/tree.py": (
                    "def from_legacy_pickle(blob):\n"
                    "    import pickle\n"  # never called from snapshot path
                    "    return pickle.loads(blob)\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL103"]) == []


class TestSKL104:
    def test_estimator_writing_counters_is_flagged(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/sketch/est.py": (
                    "class Sketch:\n"
                    "    def estimate_batch(self, values):\n"
                    "        return self._lookup(values)\n"
                    "    def _lookup(self, values):\n"
                    "        self.counters[0] += 1\n"
                    "        return self.counters[0]\n"
                ),
            },
        )
        violations = analyze_paths([root], select=["SKL104"])
        (violation,) = violations
        assert "_lookup" in violation.message
        assert "estimate_batch" in violation.message

    def test_fresh_local_and_init_writes_are_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/sketch/est.py": (
                    "import numpy as np\n"
                    "class Sketch:\n"
                    "    def __init__(self, n):\n"
                    "        self.counters = np.zeros(n, dtype=np.int64)\n"
                    "    def estimate_merged(self, other):\n"
                    "        combined = Sketch(4)\n"
                    "        combined.counters = self.counters + other\n"
                    "        return combined.counters.sum()\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL104"]) == []


class TestSKL105:
    def test_unsafe_numpy_deserialisation(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/io.py": (
                    "import io\n"
                    "import numpy as np\n"
                    "def load_a(payload):\n"
                    "    return np.load(io.BytesIO(payload))\n"
                    "def load_b(payload):\n"
                    "    return np.load(io.BytesIO(payload), allow_pickle=True)\n"
                    "def load_c(buffer):\n"
                    "    return np.frombuffer(buffer)\n"
                ),
            },
        )
        violations = analyze_paths([root], select=["SKL105"])
        assert [v.rule for v in violations] == ["SKL105"] * 3
        assert {v.line for v in violations} == {4, 6, 8}

    def test_explicit_dtype_and_allow_pickle_false_are_clean(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/io.py": (
                    "import io\n"
                    "import numpy as np\n"
                    "def load_a(payload):\n"
                    "    return np.load(io.BytesIO(payload), allow_pickle=False)\n"
                    "def load_c(buffer):\n"
                    "    return np.frombuffer(buffer, dtype=np.int64)\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL105"]) == []


class TestSuppression:
    def test_file_level_suppression(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/io.py": (
                    "# sketchlint: disable-file=SKL105\n"
                    "import io\n"
                    "import numpy as np\n"
                    "def load(payload):\n"
                    "    return np.load(io.BytesIO(payload))\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL105"]) == []

    def test_line_level_suppression_of_semantic_rule(self, tmp_path):
        root = write_project(
            tmp_path,
            {
                "repro/core/io.py": (
                    "import io\n"
                    "import numpy as np\n"
                    "def load(payload):\n"
                    "    return np.load(io.BytesIO(payload))  # sketchlint: disable=SKL105\n"
                ),
            },
        )
        assert analyze_paths([root], select=["SKL105"]) == []

    def test_suppressions_object(self):
        source = (
            "# sketchlint: disable-file=SKL004\n"
            "x = 1  # sketchlint: disable=SKL006\n"
        )
        sup = Suppressions(source)
        assert sup.file_wide == {"SKL004"}
        assert sup.hides(Violation("SKL004", "p.py", 99, 1, "m"))
        assert sup.hides(Violation("SKL006", "p.py", 2, 1, "m"))
        assert not sup.hides(Violation("SKL006", "p.py", 3, 1, "m"))


_rule_ids = st.sampled_from(["SKL101", "SKL102", "SKL103", "SKL104", "SKL105"])
_line_texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters="|"),
    min_size=0,
    max_size=40,
)


class TestBaseline:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(_rule_ids, st.integers(1, 20), _line_texts),
            min_size=0,
            max_size=12,
        )
    )
    def test_baseline_round_trips(self, tmp_path_factory, raw):
        """write -> read -> identical suppression set: every finding the
        baseline was rendered from is baselined on re-read, none are new."""
        lines = [f"line {i}" for i in range(21)]
        for _, lineno, text in raw:
            lines[lineno - 1] = text
        source = "\n".join(lines)
        sources = {"src/repro/m.py": source}
        violations = [
            Violation(rule, "src/repro/m.py", lineno, 1, f"finding {i}")
            for i, (rule, lineno, _) in enumerate(raw)
        ]
        path = tmp_path_factory.mktemp("baseline") / "baseline.json"
        path.write_text(render_baseline(violations, sources), encoding="utf-8")
        reloaded = load_baseline(path)
        new, known = split_baselined(violations, reloaded, sources)
        assert new == []
        assert sorted(known, key=Violation.sort_key) == sorted(
            set(violations), key=Violation.sort_key
        ) or len(known) == len(violations)

    def test_keys_are_line_number_independent(self):
        source_a = "import pickle\n"
        source_b = "# a new comment pushes the line down\nimport pickle\n"
        v_a = Violation("SKL103", "m.py", 1, 1, "msg")
        v_b = Violation("SKL103", "m.py", 2, 1, "msg")
        key_a = finding_keys([v_a], {"m.py": source_a})[v_a]
        key_b = finding_keys([v_b], {"m.py": source_b})[v_b]
        assert key_a == key_b

    def test_identical_lines_get_distinct_keys(self):
        source = "import pickle\nimport pickle\n"
        v1 = Violation("SKL103", "m.py", 1, 1, "msg")
        v2 = Violation("SKL103", "m.py", 2, 1, "msg")
        keys = finding_keys([v1, v2], {"m.py": source})
        assert keys[v1] != keys[v2]

    def test_new_findings_not_masked_by_baseline(self):
        sources = {"m.py": "import pickle\nimport marshal\n"}
        old = Violation("SKL103", "m.py", 1, 1, "pickle")
        new = Violation("SKL103", "m.py", 2, 1, "marshal")
        baseline_doc = render_baseline([old], sources)
        baseline = json.loads(baseline_doc)["findings"]
        fresh, known = split_baselined([old, new], baseline, sources)
        assert fresh == [new]
        assert known == [old]

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(
            REPO_ROOT / "tools" / "sketchlint" / "baseline.json"
        )
        assert baseline == {}


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.sketchlint", *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_src_clean_both_phases(self):
        result = self._run("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violations" in result.stdout

    def test_syntax_error_is_finding_not_usage_error(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        result = self._run(str(bad))
        assert result.returncode == 1, result.stdout + result.stderr
        assert "SKL000" in result.stdout

    def test_unknown_rule_still_exits_two(self):
        result = self._run("--select", "SKL999", "src")
        assert result.returncode == 2

    def test_unreadable_path_is_skl000_finding(self):
        result = self._run("does/not/exist.py")
        assert result.returncode == 1
        assert "SKL000" in result.stdout

    def test_select_semantic_rule(self, tmp_path):
        target = tmp_path / "io.py"
        target.write_text(
            "import numpy as np\n"
            "def load(buffer):\n"
            "    return np.frombuffer(buffer)\n",
            encoding="utf-8",
        )
        (tmp_path / "__init__.py").write_text("", encoding="utf-8")
        result = self._run("--select", "SKL105", str(tmp_path))
        assert result.returncode == 1
        assert "SKL105" in result.stdout

    def test_no_semantic_skips_skl1xx(self, tmp_path):
        target = tmp_path / "io.py"
        target.write_text(
            "import numpy as np\n"
            "def load(buffer):\n"
            "    return np.frombuffer(buffer)\n",
            encoding="utf-8",
        )
        (tmp_path / "__init__.py").write_text("", encoding="utf-8")
        result = self._run("--no-semantic", str(tmp_path))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_sarif_output_shape(self, tmp_path):
        target = tmp_path / "io.py"
        target.write_text(
            "import numpy as np\n"
            "def load(buffer):\n"
            "    return np.frombuffer(buffer)\n",
            encoding="utf-8",
        )
        (tmp_path / "__init__.py").write_text("", encoding="utf-8")
        result = self._run("--format", "sarif", str(tmp_path))
        assert result.returncode == 1
        sarif = json.loads(result.stdout)
        assert sarif["version"] == "2.1.0"
        assert "sarif-2.1.0" in sarif["$schema"]
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "sketchlint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SKL000", "SKL001", "SKL105"} <= rule_ids
        (finding,) = [r for r in run["results"] if r["ruleId"] == "SKL105"]
        location = finding["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("io.py")
        assert location["region"]["startLine"] == 3
        assert finding["partialFingerprints"]["sketchlint/v1"]

    def test_sarif_clean_run_has_empty_results(self):
        result = self._run("--format", "sarif", "src")
        assert result.returncode == 0, result.stderr
        sarif = json.loads(result.stdout)
        assert sarif["runs"][0]["results"] == []

    def test_baseline_accepts_existing_and_catches_new(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        target = pkg / "io.py"
        target.write_text(
            "import numpy as np\n"
            "def load(buffer):\n"
            "    return np.frombuffer(buffer)\n",
            encoding="utf-8",
        )
        baseline = tmp_path / "baseline.json"
        update = self._run(
            "--baseline", str(baseline), "--update-baseline", str(pkg)
        )
        assert update.returncode == 0, update.stdout + update.stderr
        assert "baseline updated with 1 finding" in update.stdout
        # Same findings -> clean exit against the baseline.
        rerun = self._run("--baseline", str(baseline), str(pkg))
        assert rerun.returncode == 0, rerun.stdout + rerun.stderr
        assert "(1 baselined)" in rerun.stdout
        # A new finding still fails.
        target.write_text(
            "import numpy as np\n"
            "def load(buffer):\n"
            "    return np.frombuffer(buffer)\n"
            "def load2(buffer):\n"
            "    return np.load(buffer)\n",
            encoding="utf-8",
        )
        result = self._run("--baseline", str(baseline), str(pkg))
        assert result.returncode == 1
        assert "np.load" in result.stdout
        assert "(1 baselined)" in result.stdout

    def test_update_baseline_on_clean_tree_matches_committed_file(self, tmp_path):
        """The CI staleness contract: regenerating the baseline over src/
        reproduces the committed (empty) baseline byte for byte."""
        out = tmp_path / "baseline.json"
        result = self._run("--baseline", str(out), "--update-baseline", "src")
        assert result.returncode == 0, result.stdout + result.stderr
        committed = (
            REPO_ROOT / "tools" / "sketchlint" / "baseline.json"
        ).read_text(encoding="utf-8")
        assert out.read_text(encoding="utf-8") == committed


class TestSourceTreeSemanticClean:
    def test_whole_repo_semantic_phase_is_clean(self):
        violations = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools"]
        )
        assert [v.render() for v in violations] == []

    def test_seeded_regression_countsketch_estimate_reduces_first(self):
        """PR regression pin: CountSketch.estimate used to narrow a raw
        pairing code to int64 *before* reducing mod p (found by SKL101)."""
        import numpy  # noqa: F401  (skip if unavailable)

        sys.path.insert(0, str(REPO_ROOT / "src"))
        try:
            from repro.sketch.countsketch import CountSketch
        finally:
            sys.path.pop(0)
        sketch = CountSketch(width=64, depth=5, seed=1)
        big = 2**80 + 12345  # a pairing-mode code beyond int64
        sketch.update_counts({big: 7})
        assert sketch.estimate(big) == pytest.approx(7.0)
