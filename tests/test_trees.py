"""Tests for the labeled-tree substrate (nodes, trees, builders, stats)."""

import pytest
from hypothesis import given

from repro.errors import TreeError
from repro.trees import (
    ForestStatistics,
    LabeledTree,
    TreeNode,
    TreeStatistics,
    from_nested,
    from_sexpr,
    to_sexpr,
)
from tests.strategies import labeled_trees, nested_trees


class TestTreeNode:
    def test_label_and_children(self):
        node = TreeNode("A")
        child = node.add("B")
        assert node.label == "A"
        assert node.children == [child]
        assert child.is_leaf

    def test_rejects_empty_label(self):
        with pytest.raises(TreeError):
            TreeNode("")

    def test_rejects_non_string_label(self):
        with pytest.raises(TreeError):
            TreeNode(42)

    def test_rejects_non_node_child(self):
        with pytest.raises(TreeError):
            TreeNode("A").add_child("B")

    def test_size(self):
        node = TreeNode("A")
        node.add("B").add("C")
        node.add("D")
        assert node.size() == 4

    def test_preorder(self):
        node = TreeNode("A")
        b = node.add("B")
        b.add("C")
        node.add("D")
        assert [n.label for n in node.iter_preorder()] == ["A", "B", "C", "D"]

    def test_to_nested(self):
        node = TreeNode("A", [TreeNode("B"), TreeNode("C")])
        assert node.to_nested() == ("A", (("B", ()), ("C", ())))

    def test_copy_is_deep(self):
        node = TreeNode("A")
        node.add("B")
        clone = node.copy()
        clone.children[0].label = "X"
        assert node.children[0].label == "B"

    def test_deep_tree_to_nested_no_recursion_error(self):
        root = TreeNode("A")
        tip = root
        for _ in range(5000):
            tip = tip.add("A")
        nested = root.to_nested()
        depth = 0
        while nested[1]:
            nested = nested[1][0]
            depth += 1
        assert depth == 5000


class TestLabeledTree:
    def test_postorder_numbering_matches_paper_convention(self):
        # Figure 6(a)-style: nodes numbered in postorder, root last.
        tree = from_sexpr("(A (B) (C (D) (E)))")
        assert tree.labels == ("B", "D", "E", "C", "A")
        assert tree.root == 5
        assert tree.label_of(5) == "A"

    def test_parents(self):
        tree = from_sexpr("(A (B) (C (D) (E)))")
        assert tree.parents == (5, 4, 4, 5, 0)

    def test_children_document_order(self):
        tree = from_sexpr("(A (B) (C (D) (E)))")
        assert tree.children_of(5) == (1, 4)
        assert tree.children_of(4) == (2, 3)
        assert tree.children_of(1) == ()

    def test_single_node(self):
        tree = from_nested("A")
        assert tree.n_nodes == 1
        assert tree.n_edges == 0
        assert tree.depth() == 0
        assert tree.is_leaf(1)

    def test_iter_edges(self):
        tree = from_sexpr("(A (B) (C))")
        assert sorted(tree.iter_edges()) == [(3, 1), (3, 2)]

    def test_depth_and_fanout(self):
        tree = from_sexpr("(A (B (C (D))) (E))")
        assert tree.depth() == 3
        assert tree.max_fanout() == 2
        assert tree.leaf_count() == 2

    def test_label_path(self):
        tree = from_sexpr("(A (B (C)))")
        assert tree.label_path(1) == ("A", "B", "C")
        assert tree.label_path(tree.root) == ("A",)

    def test_equality_and_hash(self):
        a = from_sexpr("(A (B) (C))")
        b = from_sexpr("(A (B) (C))")
        c = from_sexpr("(A (C) (B))")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_postorder_number_out_of_range(self):
        tree = from_sexpr("(A (B))")
        with pytest.raises(TreeError):
            tree.label_of(0)
        with pytest.raises(TreeError):
            tree.label_of(3)

    def test_to_node_roundtrip(self):
        tree = from_sexpr("(A (B (C) (D)) (E))")
        assert LabeledTree(tree.to_node()) == tree

    def test_constructor_copies_builder(self):
        node = TreeNode("A")
        node.add("B")
        tree = LabeledTree(node)
        node.add("C")  # mutating the builder must not affect the tree
        assert tree.n_nodes == 2

    def test_rejects_non_node_root(self):
        with pytest.raises(TreeError):
            LabeledTree("A")

    @given(labeled_trees())
    def test_nested_roundtrip(self, tree):
        assert from_nested(tree.to_nested()) == tree

    @given(labeled_trees())
    def test_parents_consistent_with_children(self, tree):
        for num in tree.iter_postorder():
            for kid in tree.children_of(num):
                assert tree.parent_of(kid) == num

    @given(labeled_trees())
    def test_postorder_parent_always_larger(self, tree):
        for parent, child in tree.iter_edges():
            assert parent > child

    @given(labeled_trees())
    def test_leaf_plus_internal_counts(self, tree):
        internal = sum(1 for n in tree.iter_postorder() if not tree.is_leaf(n))
        assert internal + tree.leaf_count() == tree.n_nodes


class TestBuilders:
    def test_from_nested_string_shorthand(self):
        assert from_nested("A").labels == ("A",)

    def test_from_nested_rejects_garbage(self):
        with pytest.raises(TreeError):
            from_nested(("A", "not-a-tuple"))
        with pytest.raises(TreeError):
            from_nested(123)

    def test_sexpr_single_label_without_parens(self):
        assert from_sexpr("A").labels == ("A",)

    def test_sexpr_nested(self):
        tree = from_sexpr("(A (B (C)) (D))")
        assert tree.to_nested() == ("A", (("B", (("C", ()),)), ("D", ())))

    def test_sexpr_unbalanced(self):
        with pytest.raises(TreeError):
            from_sexpr("(A (B)")

    def test_sexpr_trailing_tokens(self):
        with pytest.raises(TreeError):
            from_sexpr("(A) (B)")

    def test_sexpr_empty(self):
        with pytest.raises(TreeError):
            from_sexpr("   ")

    def test_sexpr_missing_label(self):
        with pytest.raises(TreeError):
            from_sexpr("(())")

    @given(labeled_trees())
    def test_sexpr_roundtrip(self, tree):
        assert from_sexpr(to_sexpr(tree)) == tree


class TestStatistics:
    def test_tree_statistics(self):
        stats = TreeStatistics.of(from_sexpr("(A (B (C)) (B))"))
        assert stats.n_nodes == 4
        assert stats.n_edges == 3
        assert stats.depth == 2
        assert stats.max_fanout == 2
        assert stats.leaf_count == 2
        assert stats.n_distinct_labels == 3

    def test_forest_statistics(self):
        trees = [from_sexpr("(A (B))"), from_sexpr("(A (B (C)) (D))")]
        stats = ForestStatistics.of(trees)
        assert stats.n_trees == 2
        assert stats.total_nodes == 6
        assert stats.mean_nodes == 3.0
        assert stats.max_depth == 2
        assert stats.n_distinct_labels == 4

    def test_forest_statistics_empty(self):
        stats = ForestStatistics.of([])
        assert stats.n_trees == 0
        assert stats.total_nodes == 0
