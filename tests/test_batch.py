"""Tests for the columnar batch pipeline.

The refactor's contract is *bit-identity*: every batched ingest path
must leave the synopsis in exactly the state the per-tree, per-value
loop would have — same counters, same top-k tracker contents, same
bookkeeping.  These tests pin that contract with hypothesis-generated
forests plus targeted unit tests for each new layer
(:class:`EncodedBatch`, vectorised Rabin, batched encoding, grouped
routing, the stream engine's micro-batching).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SketchTree, SketchTreeConfig
from repro.core import EncodedBatch, PatternEncoder
from repro.core.batch import FieldReducer
from repro.datasets import TreebankGenerator
from repro.enumtree import collect_forest_patterns, enumerate_patterns
from repro.errors import ConfigError
from repro.hashing.pairing import pair_sequence, pair_sequences
from repro.hashing.rabin import RabinFingerprint
from repro.sketch import SketchMatrix
from repro.stream import StreamProcessor
from repro.trees.builders import from_nested

from .strategies import nested_trees


def small_config(**overrides) -> SketchTreeConfig:
    defaults = dict(
        s1=8, s2=3, max_pattern_edges=3, n_virtual_streams=13, seed=5
    )
    defaults.update(overrides)
    return SketchTreeConfig(**defaults)


def synopsis_state(st_: SketchTree):
    """Everything the bit-identity contract covers, comparably."""
    counters = {
        residue: matrix.counters.copy()
        for residue, matrix in st_.streams.iter_sketches()
    }
    trackers = {
        residue: tracker.snapshot()
        for residue, tracker in st_.streams.iter_trackers()
    }
    return counters, trackers, st_.n_trees, st_.n_values


def assert_same_state(a: SketchTree, b: SketchTree) -> None:
    counters_a, trackers_a, trees_a, values_a = synopsis_state(a)
    counters_b, trackers_b, trees_b, values_b = synopsis_state(b)
    assert trees_a == trees_b
    assert values_a == values_b
    assert counters_a.keys() == counters_b.keys()
    for residue in counters_a:
        np.testing.assert_array_equal(counters_a[residue], counters_b[residue])
    assert trackers_a == trackers_b


forests = st.lists(nested_trees(max_nodes=6), min_size=1, max_size=6).map(
    lambda nested: [from_nested(n) for n in nested]
)


class TestIngestPathEquivalence:
    """All streaming ingest paths are bit-identical to the per-tree loop."""

    @given(forests)
    @settings(max_examples=25, deadline=None)
    def test_update_batch_matches_update_loop(self, trees):
        config = small_config(topk_size=2, topk_probability=0.5)
        loop, batched = SketchTree(config), SketchTree(config)
        for tree in trees:
            loop.update(tree)
        batched.update_batch(trees)
        assert_same_state(loop, batched)

    @given(forests)
    @settings(max_examples=15, deadline=None)
    def test_stream_processor_micro_batching(self, trees):
        config = small_config(topk_size=2, topk_probability=0.5)
        loop, batched = SketchTree(config), SketchTree(config)
        StreamProcessor([loop]).run(trees)
        StreamProcessor([batched], batch_trees=3).run(trees)
        assert_same_state(loop, batched)

    @given(forests)
    @settings(max_examples=15, deadline=None)
    def test_ingest_matches_update_loop(self, trees):
        config = small_config(topk_size=2, topk_probability=0.5)
        loop, ingested = SketchTree(config), SketchTree(config)
        for tree in trees:
            loop.update(tree)
        ingested.ingest(trees, batch_trees=2)
        assert_same_state(loop, ingested)

    @given(forests)
    @settings(max_examples=15, deadline=None)
    def test_update_from_patterns_matches_update(self, trees):
        config = small_config(topk_size=2, topk_probability=0.5)
        direct, via_patterns = SketchTree(config), SketchTree(config)
        k = config.max_pattern_edges
        for tree in trees:
            direct.update(tree)
            via_patterns.update_from_patterns(enumerate_patterns(tree, k))
        counters_a, _, trees_a, values_a = synopsis_state(direct)
        counters_b, _, trees_b, values_b = synopsis_state(via_patterns)
        assert (trees_a, values_a) == (trees_b, values_b)
        assert counters_a.keys() == counters_b.keys()
        for residue in counters_a:
            np.testing.assert_array_equal(
                counters_a[residue], counters_b[residue]
            )

    @given(forests)
    @settings(max_examples=15, deadline=None)
    def test_ingest_counts_matches_stream(self, trees):
        # Counters only: ingest_counts' top-k emulation is deliberately
        # not a replay (bulk_build), so compare with tracking disabled.
        config = small_config(topk_size=0)
        streamed, bulk = SketchTree(config), SketchTree(config)
        counts: dict = {}
        k = config.max_pattern_edges
        for tree in trees:
            streamed.update(tree)
            for pattern in enumerate_patterns(tree, k):
                counts[pattern] = counts.get(pattern, 0) + 1
        bulk.ingest_counts(counts, n_trees=len(trees))
        assert_same_state(streamed, bulk)

    @given(forests)
    @settings(max_examples=15, deadline=None)
    def test_delete_then_reinsert_round_trip(self, trees):
        config = small_config()
        synopsis = SketchTree(config)
        for tree in trees:
            synopsis.update(tree)
        before, _, n_trees, n_values = synopsis_state(synopsis)
        victim = trees[0]
        synopsis.delete_tree(victim)
        synopsis.update(victim)
        after, _, n_trees_after, n_values_after = synopsis_state(synopsis)
        assert (n_trees, n_values) == (n_trees_after, n_values_after)
        for residue in before:
            np.testing.assert_array_equal(before[residue], after[residue])

    def test_delete_empties_counters(self):
        config = small_config()
        synopsis = SketchTree(config)
        tree = from_nested(("A", (("B", ()), ("C", (("A", ()),)))))
        synopsis.update(tree)
        synopsis.delete_tree(tree)
        assert synopsis.n_trees == 0
        assert synopsis.n_values == 0
        for _, matrix in synopsis.streams.iter_sketches():
            assert not matrix.counters.any()


class TestEncodedBatch:
    class _IdentityReducer:
        def to_field(self, values, count=-1):
            return np.fromiter((int(v) % (2**31 - 1) for v in values),
                               dtype=np.int64, count=count)

        def to_field_array(self, values):
            return np.asarray(values, dtype=np.int64) % (2**31 - 1)

    def test_build_small_values(self):
        xi = self._IdentityReducer()
        batch = EncodedBatch.build([10, 23, 10], 13, xi)
        np.testing.assert_array_equal(batch.residues, [10, 10, 10])
        np.testing.assert_array_equal(batch.counts, [1, 1, 1])
        assert len(batch) == 3
        assert batch.total_count() == 3

    def test_build_big_int_fallback_matches_fast_path(self):
        xi = self._IdentityReducer()
        small = [3, 7, 2**31]
        big = small + [2**200 + 5]  # forces the exact-Python fallback
        fast = EncodedBatch.build(small, 13, xi)
        slow = EncodedBatch.build(big, 13, xi)
        np.testing.assert_array_equal(slow.residues[:3], fast.residues)
        np.testing.assert_array_equal(slow.values[:3], fast.values)
        assert slow.residues[3] == (2**200 + 5) % 13
        assert slow.values[3] == (2**200 + 5) % (2**31 - 1)

    def test_counts_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            EncodedBatch.build([1, 2], 13, self._IdentityReducer(), counts=[1])

    def test_bad_tree_offsets_rejected(self):
        xi = self._IdentityReducer()
        with pytest.raises(ConfigError):
            EncodedBatch.build([1, 2, 3], 13, xi, tree_offsets=[0, 2])
        with pytest.raises(ConfigError):
            EncodedBatch.build([1, 2, 3], 13, xi, tree_offsets=[1, 3])

    def test_tree_segments(self):
        xi = self._IdentityReducer()
        batch = EncodedBatch.build(
            [1, 2, 3, 4, 5], 13, xi, tree_offsets=[0, 2, 2, 5]
        )
        assert batch.n_trees == 3
        assert list(batch.tree_segments()) == [(0, 2), (2, 2), (2, 5)]
        segment = batch.segment(2, 5)
        np.testing.assert_array_equal(segment.values, batch.values[2:5])

    def test_segments_require_offsets(self):
        batch = EncodedBatch.build([1, 2], 13, self._IdentityReducer())
        assert batch.n_trees == 0
        with pytest.raises(ConfigError):
            list(batch.tree_segments())

    def test_iter_residue_groups_preserves_arrival_order(self):
        xi = self._IdentityReducer()
        raw = [5, 18, 6, 31, 5]  # residues mod 13: 5, 5, 6, 5, 5
        batch = EncodedBatch.build(raw, 13, xi)
        groups = {r: list(idx) for r, idx in batch.iter_residue_groups()}
        assert groups == {5: [0, 1, 3, 4], 6: [2]}

    def test_iter_residue_groups_empty(self):
        batch = EncodedBatch.build([], 13, self._IdentityReducer())
        assert list(batch.iter_residue_groups()) == []


class TestVectorisedEncoding:
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                     max_size=12),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_of_sequences_matches_of_sequence(self, sequences):
        fp = RabinFingerprint(degree=31, seed=3)
        batched = fp.of_sequences(sequences)
        scalar = [fp.of_sequence(seq) for seq in sequences]
        assert [int(v) for v in batched] == scalar

    def test_of_sequences_degree_61(self):
        fp = RabinFingerprint(degree=61, seed=1)
        sequences = [[2**32 - 1, 0, 17], [], [5]]
        assert [int(v) for v in fp.of_sequences(sequences)] == [
            fp.of_sequence(seq) for seq in sequences
        ]

    def test_pair_sequences_matches_scalar(self):
        sequences = [[1, 2, 3], [7, 7, 7, 7], [2**40, 5]]
        assert pair_sequences(sequences) == [
            pair_sequence(seq) for seq in sequences
        ]

    @given(st.lists(nested_trees(max_nodes=6), min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_encode_batch_matches_encode(self, patterns):
        scalar_enc = PatternEncoder(seed=4)
        batch_enc = PatternEncoder(seed=4)
        assert batch_enc.encode_batch(patterns) == [
            scalar_enc.encode(p) for p in patterns
        ]

    def test_encode_batch_pairing_mode(self):
        patterns = [("A", (("B", ()),)), ("C", ()), ("A", (("B", ()),))]
        scalar_enc = PatternEncoder(mapping="pairing")
        batch_enc = PatternEncoder(mapping="pairing")
        assert batch_enc.encode_batch(patterns) == [
            scalar_enc.encode(p) for p in patterns
        ]

    def test_lru_stays_bounded_and_correct(self):
        patterns = [("A", ()), ("B", ()), ("C", ()), ("D", ()), ("A", ())]
        bounded = PatternEncoder(seed=4, cache_limit=2)
        unbounded = PatternEncoder(seed=4)
        values = [bounded.encode(p) for p in patterns]
        assert bounded.cache_size <= 2
        # Eviction cost recomputation, never a different value.
        assert values == [unbounded.encode(p) for p in patterns]
        assert bounded.encode_batch(patterns) == values
        assert bounded.cache_size <= 2

    def test_bad_cache_limit_rejected(self):
        with pytest.raises(ConfigError):
            PatternEncoder(cache_limit=0)


class TestSketchMatrixBatch:
    def test_update_batch_accepts_encoded_batch(self):
        config = small_config()
        synopsis = SketchTree(config)
        raw = [3, 17, 3, 99, 17]
        counts = [2, 1, -1, 4, 1]
        batch = EncodedBatch.build(
            raw, 1, synopsis.streams.xi, counts=counts
        )
        direct = SketchMatrix(config.s1, config.s2, xi=synopsis.streams.xi)
        direct.update_batch(batch)
        reference = SketchMatrix(config.s1, config.s2, xi=synopsis.streams.xi)
        for value, count in zip(raw, counts):
            reference.update(value, count)
        np.testing.assert_array_equal(direct.counters, reference.counters)

    def test_update_batch_rejects_separate_counts_with_batch(self):
        config = small_config()
        synopsis = SketchTree(config)
        batch = EncodedBatch.build([1, 2], 1, synopsis.streams.xi)
        matrix = SketchMatrix(config.s1, config.s2, xi=synopsis.streams.xi)
        with pytest.raises(ConfigError):
            matrix.update_batch(batch, counts=np.array([1, 1]))


class TestStreamProcessorBatching:
    def test_batch_trees_validated(self):
        synopsis = SketchTree(small_config())
        with pytest.raises(ConfigError):
            StreamProcessor([synopsis], batch_trees=0)
        with pytest.raises(ConfigError):
            synopsis.ingest([], batch_trees=0)

    def test_checkpoint_boundaries_preserved_under_batching(self):
        trees = list(TreebankGenerator(seed=3).generate(7))
        seen: list[tuple[int, int]] = []
        synopsis = SketchTree(small_config())
        processor = StreamProcessor(
            [synopsis],
            checkpoint_every=3,
            on_checkpoint=lambda n: seen.append((n, synopsis.n_trees)),
            batch_trees=2,
        )
        stats = processor.run(trees)
        # Fires at exactly 3 and 6 — micro-batches never straddle the
        # boundary, and the synopsis has absorbed exactly n trees when
        # the callback observes it.
        assert seen == [(3, 3), (6, 6)]
        assert stats.n_trees == 7

    def test_batched_run_matches_unbatched(self):
        trees = list(TreebankGenerator(seed=4).generate(6))
        config = small_config(topk_size=2, topk_probability=0.5)
        unbatched, batched = SketchTree(config), SketchTree(config)
        StreamProcessor([unbatched]).run(trees)
        StreamProcessor([batched], batch_trees=4).run(trees)
        assert_same_state(unbatched, batched)


class TestFieldReducerProtocol:
    def test_xi_families_satisfy_protocol(self):
        from repro.sketch.bch import BchXiGenerator
        from repro.sketch.xi import XiGenerator

        for xi in (XiGenerator(6, seed=1), BchXiGenerator(6, seed=1)):
            assert isinstance(xi, FieldReducer)
            values = np.array([0, 5, 2**31 - 1, 2**62], dtype=np.int64)
            np.testing.assert_array_equal(
                xi.to_field_array(values),
                xi.to_field((int(v) for v in values), count=len(values)),
            )


def test_collect_forest_patterns_offsets():
    trees = [from_nested(n) for n in (
        ("A", (("B", ()),)),
        ("C", ()),
    )]
    patterns, offsets = collect_forest_patterns(trees, 3)
    assert offsets[0] == 0
    assert offsets[-1] == len(patterns)
    assert len(offsets) == len(trees) + 1
    first = enumerate_patterns(trees[0], 3)
    assert patterns[: len(first)] == first
