"""Tests for pattern helpers: arrangements, OR expansion, validation."""

import pytest
from hypothesis import given, settings

from repro.errors import PatternError
from repro.query import (
    arrangements,
    expand_or_labels,
    pattern_edges,
    pattern_from_sexpr,
    pattern_nodes,
    validate_pattern,
)
from tests.strategies import nested_trees


class TestValidation:
    def test_accepts_wellformed(self):
        validate_pattern(("A", (("B", ()),)))

    @pytest.mark.parametrize(
        "bad",
        [
            "A",                       # bare string is not nested form
            ("A",),                    # wrong arity
            ("A", [("B", ())]),        # list instead of tuple
            (1, ()),                   # non-string label
            ("", ()),                  # empty label
            ("A", (("B",),)),          # malformed child
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(PatternError):
            validate_pattern(bad)

    def test_sizes(self):
        pattern = pattern_from_sexpr("(A (B (C)) (D))")
        assert pattern_nodes(pattern) == 4
        assert pattern_edges(pattern) == 3


class TestArrangements:
    def test_paper_figure4(self):
        # Figure 4: Q = A(B, B(C)) — wait, the figure shows four ordered
        # arrangements of one unordered Q; the canonical small case with
        # exactly 4 arrangements is two levels of 2-permutations:
        pattern = pattern_from_sexpr("(A (B (C) (D)))")
        # children of B permute (2) and B is the only child of A: 2 total.
        assert len(arrangements(pattern)) == 2

    def test_two_distinct_children(self):
        out = arrangements(pattern_from_sexpr("(A (B) (C))"))
        assert out == {
            ("A", (("B", ()), ("C", ()))),
            ("A", (("C", ()), ("B", ()))),
        }

    def test_identical_children_deduplicated(self):
        out = arrangements(pattern_from_sexpr("(A (B) (B))"))
        assert out == {("A", (("B", ()), ("B", ())))}

    def test_nested_permutations_multiply(self):
        # A(B(X, Y), C): 2 child orders at A x 2 at B = 4.
        out = arrangements(pattern_from_sexpr("(A (B (X) (Y)) (C))"))
        assert len(out) == 4

    def test_original_always_included(self):
        pattern = pattern_from_sexpr("(A (B (X)) (C))")
        assert pattern in arrangements(pattern)

    def test_three_distinct_children(self):
        out = arrangements(pattern_from_sexpr("(A (B) (C) (D))"))
        assert len(out) == 6

    def test_explosion_guard(self):
        wide = ("A", tuple((f"C{i}", ()) for i in range(9)))  # 9! > 10k
        with pytest.raises(PatternError):
            arrangements(wide)
        assert len(arrangements(wide, limit=None)) == 362880

    @given(nested_trees(max_nodes=6))
    @settings(max_examples=50, deadline=None)
    def test_arrangement_count_bounds(self, pattern):
        out = arrangements(pattern)
        assert 1 <= len(out)
        assert pattern in out
        # Every arrangement has the same node multiset.
        def labels(p):
            out = [p[0]]
            for c in p[1]:
                out.extend(labels(c))
            return sorted(out)

        base = labels(pattern)
        assert all(labels(a) == base for a in out)

    @given(nested_trees(max_nodes=5))
    @settings(max_examples=50, deadline=None)
    def test_arrangements_closed(self, pattern):
        # Arranging an arrangement yields the same set.
        out = arrangements(pattern)
        any_other = next(iter(out))
        assert arrangements(any_other) == out


class TestOrExpansion:
    def test_paper_example5(self):
        # 'VBD|VBP|VBZ' expands into three distinct queries.
        pattern = pattern_from_sexpr("(VP (VBD|VBP|VBZ) (NP))")
        expanded = expand_or_labels(pattern)
        assert len(expanded) == 3
        assert ("VP", (("VBD", ()), ("NP", ()))) in expanded
        assert ("VP", (("VBZ", ()), ("NP", ()))) in expanded

    def test_no_or_returns_single(self):
        pattern = pattern_from_sexpr("(A (B))")
        assert expand_or_labels(pattern) == [pattern]

    def test_multiple_or_nodes_cartesian(self):
        pattern = pattern_from_sexpr("(A|X (B|Y))")
        assert len(expand_or_labels(pattern)) == 4

    def test_duplicate_operands_deduplicated(self):
        pattern = pattern_from_sexpr("(A (B|B))")
        assert expand_or_labels(pattern) == [("A", (("B", ()),))]

    def test_empty_operand_rejected(self):
        with pytest.raises(PatternError):
            expand_or_labels(("A", (("B|", ()),)))

    def test_or_in_root(self):
        expanded = expand_or_labels(pattern_from_sexpr("(A|B (C))"))
        assert set(expanded) == {
            ("A", (("C", ()),)),
            ("B", (("C", ()),)),
        }
