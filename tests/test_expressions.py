"""Tests for the query-expression algebra (Section 4)."""

import pytest

from repro.core import Count, ExactCounter, required_independence
from repro.errors import QueryError
from repro.trees import from_sexpr

A_B = ("A", (("B", ()),))
A_C = ("A", (("C", ()),))
B_C = ("B", (("C", ()),))


class TestExpansion:
    def test_single_count(self):
        assert Count(A_B).expand() == [(1, (A_B,))]

    def test_sum(self):
        terms = (Count(A_B) + Count(A_C)).expand()
        assert sorted(terms) == sorted([(1, (A_B,)), (1, (A_C,))])

    def test_difference(self):
        terms = (Count(A_B) - Count(A_C)).expand()
        assert (1, (A_B,)) in terms
        assert (-1, (A_C,)) in terms

    def test_product(self):
        terms = (Count(A_B) * Count(A_C)).expand()
        assert len(terms) == 1
        coeff, atoms = terms[0]
        assert coeff == 1
        assert set(atoms) == {A_B, A_C}

    def test_distribution(self):
        # (a + b) * c = a*c + b*c
        expression = (Count(A_B) + Count(A_C)) * Count(B_C)
        terms = expression.expand()
        assert len(terms) == 2
        assert all(len(atoms) == 2 for _, atoms in terms)

    def test_like_terms_combined(self):
        expression = Count(A_B) + Count(A_B)
        assert expression.expand() == [(2, (A_B,))]

    def test_cancellation_drops_term(self):
        expression = Count(A_B) - Count(A_B)
        assert expression.expand() == []

    def test_self_product_rejected(self):
        with pytest.raises(QueryError):
            (Count(A_B) * Count(A_B)).expand()

    def test_scalar_operand_rejected(self):
        with pytest.raises(QueryError):
            Count(A_B) + 3

    def test_count_accepts_sexpr(self):
        assert Count("(A (B))").pattern == A_B

    def test_atoms(self):
        expression = Count(A_B) * Count(A_C) + Count(B_C)
        assert set(expression.atoms()) == {A_B, A_C, B_C}

    def test_max_degree(self):
        assert Count(A_B).max_degree() == 1
        assert (Count(A_B) * Count(A_C)).max_degree() == 2
        assert (Count(A_B) * Count(A_C) + Count(B_C)).max_degree() == 2


class TestCanonicalTermKey:
    """``expand()`` sorts each term's atoms by a Prüfer-derived key so
    commuted products combine regardless of the nesting shapes of the
    factors (structural tuple comparison is shape-sensitive and, in
    general, not a total order over heterogeneous nestings)."""

    # Patterns of deliberately divergent shapes: a bare edge, a chain,
    # and a branching pattern.
    EDGE = ("A", (("B", ()),))
    CHAIN = ("A", (("B", (("C", ()),)),))
    BRANCH = ("A", (("B", ()), ("C", ())))
    DEEP = ("X", (("A", (("B", ()),)),))

    def all_patterns(self):
        return [self.EDGE, self.CHAIN, self.BRANCH, self.DEEP]

    def test_key_is_injective_over_distinct_patterns(self):
        from repro.core.expressions import canonical_pattern_key

        keys = [canonical_pattern_key(p) for p in self.all_patterns()]
        assert len(set(keys)) == len(keys)

    def test_key_components_are_homogeneous(self):
        from repro.core.expressions import canonical_pattern_key

        for pattern in self.all_patterns():
            lps, nps = canonical_pattern_key(pattern)
            assert all(isinstance(label, str) for label in lps)
            assert all(isinstance(number, int) for number in nps)

    def test_commuted_heterogeneous_products_cancel(self):
        # q1*q2 - q2*q1 must expand to nothing, for every shape pairing.
        patterns = self.all_patterns()
        for i, p in enumerate(patterns):
            for q in patterns[i + 1 :]:
                expression = Count(p) * Count(q) - Count(q) * Count(p)
                assert expression.expand() == []

    def test_commuted_triple_products_combine(self):
        forward = Count(self.EDGE) * Count(self.CHAIN) * Count(self.BRANCH)
        backward = Count(self.BRANCH) * Count(self.CHAIN) * Count(self.EDGE)
        assert (forward + backward).expand() == [
            (2, forward.expand()[0][1])
        ]

    def test_expand_deterministic_across_factor_orders(self):
        # The canonical key fixes one atom order per term, whatever
        # order the factors were written in.
        left = (Count(self.DEEP) * Count(self.EDGE)).expand()
        right = (Count(self.EDGE) * Count(self.DEEP)).expand()
        assert left == right


class TestStringParsing:
    def test_simple_sum(self):
        from repro.core import parse_expression

        expression = parse_expression("COUNT((A (B))) + COUNT((A (C)))")
        assert sorted(expression.expand()) == sorted(
            [(1, (A_B,)), (1, (A_C,))]
        )

    def test_xpath_argument(self):
        from repro.core import parse_expression

        expression = parse_expression("COUNT(A/B)")
        assert expression.expand() == [(1, (A_B,))]

    def test_precedence(self):
        from repro.core import parse_expression

        expression = parse_expression("COUNT(A/B) + COUNT(A/C) * COUNT(B/C)")
        degrees = sorted(len(atoms) for _, atoms in expression.expand())
        assert degrees == [1, 2]

    def test_parentheses_group(self):
        from repro.core import parse_expression

        expression = parse_expression(
            "(COUNT(A/B) + COUNT(A/C)) * COUNT(B/C)"
        )
        assert all(len(atoms) == 2 for _, atoms in expression.expand())
        assert len(expression.expand()) == 2

    def test_difference(self):
        from repro.core import parse_expression

        expression = parse_expression("COUNT(A/B) - COUNT(A/C)")
        assert (-1, (A_C,)) in expression.expand()

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "COUNT",
            "COUNT()",
            "COUNT(A/B",
            "COUNT(A/B) +",
            "COUNT(A//B)",          # not a concrete pattern
            "2 * COUNT(A/B)",       # scalars not in the grammar
            "COUNT(A/B) COUNT(A/C)",
        ],
    )
    def test_malformed_rejected(self, bad):
        from repro.core import parse_expression

        with pytest.raises(QueryError):
            parse_expression(bad)

    def test_estimate_expression_accepts_string(self):
        from repro import SketchTree, SketchTreeConfig

        synopsis = SketchTree(
            SketchTreeConfig(s1=40, s2=5, max_pattern_edges=2,
                             n_virtual_streams=31, seed=2)
        )
        for _ in range(10):
            synopsis.update(from_sexpr("(A (B) (C))"))
        value = synopsis.estimate_expression("COUNT(A/B) - COUNT(A/C)")
        assert abs(value) <= 8  # both counts are 10; difference near 0


class TestIndependenceRequirement:
    def test_linear_needs_four(self):
        assert required_independence(Count(A_B) + Count(A_C)) == 4

    def test_product_needs_2d(self):
        assert required_independence(Count(A_B) * Count(A_C)) == 4
        triple = Count(A_B) * Count(A_C) * Count(B_C)
        assert required_independence(triple) == 6


class TestExactEvaluation:
    def test_example3_shape(self):
        # COUNT(Q1)·COUNT(Q2) + COUNT(Q3)·COUNT(Q4) − COUNT(Q5)·COUNT(Q6)
        trees = [from_sexpr("(A (B) (C))")] * 6 + [from_sexpr("(B (C))")] * 2
        exact = ExactCounter(2).ingest(trees)
        q1, q2, q3 = A_B, A_C, B_C
        expression = Count(q1) * Count(q2) + Count(q3) - Count(q1)
        expected = (
            exact.count_ordered(q1) * exact.count_ordered(q2)
            + exact.count_ordered(q3)
            - exact.count_ordered(q1)
        )
        assert exact.evaluate_expression(expression) == expected

    def test_paper_example6_difference(self):
        # COUNT(Q) - COUNT(Q') where Q' extends Q with a parent: the
        # "SQ without parent SBARQ" query shape.
        trees = [
            from_sexpr("(SBARQ (SQ (NN)))"),
            from_sexpr("(X (SQ (NN)))"),
            from_sexpr("(SQ (NN))"),
        ]
        exact = ExactCounter(2).ingest(trees)
        q = ("SQ", (("NN", ()),))
        q_prime = ("SBARQ", (("SQ", (("NN", ()),)),))
        value = exact.evaluate_expression(Count(q) - Count(q_prime))
        assert value == 3 - 1  # three SQ/NN occurrences, one under SBARQ
