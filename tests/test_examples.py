"""Smoke-executes the quickstart example (the others run longer and are
exercised by the release checklist; this one guards the README's first
impression)."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def test_quickstart_runs_and_reports():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    out = result.stdout
    assert "synopsis memory" in out
    assert "ordered" in out and "unordered" in out
    # The quickstart's stream has deterministic exact counts; the printout
    # must include them (estimates are nearby but not asserted here).
    assert " 120" in out  # (item (headline) (body)) count
