"""Tests for exact pattern matching: paper Figure 1 + oracle identities."""

from collections import Counter

from hypothesis import given, settings

from repro.enumtree import enumerate_patterns
from repro.query import count_ordered, count_unordered
from repro.query.matching import (
    count_ordered_in_stream,
    count_unordered_in_stream,
)
from repro.trees import from_sexpr
from tests.strategies import labeled_trees, nested_trees

# The Figure 1 stream: T1, T2, T3 built to reproduce the paper's counts
# for Q = A(B, C): ordered matches 2 (T1) + 0 (T2) + 1 (T3) = 3, and
# unordered matches 5 in total (T2 contributes two C-before-B matches).
T1 = from_sexpr("(A (B) (C) (C))")        # two ordered matches B..C
T2 = from_sexpr("(A (C) (C) (B))")        # two unordered (C-before-B) matches only
T3 = from_sexpr("(X (A (B) (C)))")        # one ordered match
Q = from_sexpr("(A (B) (C))").to_nested()


class TestPaperFigure1:
    def test_t1_ordered(self):
        assert count_ordered(T1, Q) == 2

    def test_t3_ordered(self):
        assert count_ordered(T3, Q) == 1

    def test_stream_unordered_total_is_five(self):
        # The paper: COUNT(Q) = 5 over the three trees.
        assert count_unordered_in_stream([T1, T2, T3], Q) == 5

    def test_stream_ordered(self):
        assert count_ordered_in_stream([T1, T2, T3], Q) == 3

    def test_stream_counts_accept_a_generator(self):
        # Both stream counters take Iterable: a one-shot generator must
        # match the list answer (SKL301 bug class).
        assert count_ordered_in_stream(iter([T1, T2, T3]), Q) == 3
        assert count_unordered_in_stream((t for t in (T1, T2, T3)), Q) == 5


class TestOrderedMatching:
    def test_label_mismatch(self):
        assert count_ordered(from_sexpr("(A (B))"), ("X", (("B", ()),))) == 0

    def test_single_node_pattern(self):
        tree = from_sexpr("(A (A (A)))")
        assert count_ordered(tree, ("A", ())) == 3

    def test_subsequence_choices(self):
        # A with four B children: A(B,B) matches C(4,2) = 6 ways.
        tree = from_sexpr("(A (B) (B) (B) (B))")
        assert count_ordered(tree, ("A", (("B", ()), ("B", ())))) == 6

    def test_order_constraint_enforced(self):
        tree = from_sexpr("(A (C) (B))")
        assert count_ordered(tree, ("A", (("B", ()), ("C", ())))) == 0
        assert count_ordered(tree, ("A", (("C", ()), ("B", ())))) == 1

    def test_deep_pattern(self):
        tree = from_sexpr("(A (B (C (D))) (B (C)))")
        assert count_ordered(tree, ("A", (("B", (("C", ()),)),))) == 2

    def test_pattern_larger_than_tree(self):
        tree = from_sexpr("(A (B))")
        pattern = ("A", (("B", ()), ("C", ())))
        assert count_ordered(tree, pattern) == 0


class TestUnorderedMatching:
    def test_symmetric_pattern_counted_once(self):
        # Q = A(B, B) has a single distinct arrangement.
        tree = from_sexpr("(A (B) (B))")
        assert count_unordered(tree, ("A", (("B", ()), ("B", ())))) == 1

    def test_asymmetric_pattern_counts_both_orders(self):
        tree = from_sexpr("(A (C) (B))")
        assert count_unordered(tree, ("A", (("B", ()), ("C", ())))) == 1
        tree2 = from_sexpr("(A (B) (C) (B))")
        # ordered B..C: 1; ordered C..B: 1 -> unordered 2.
        assert count_unordered(tree2, ("A", (("B", ()), ("C", ())))) == 2

    def test_unordered_at_least_ordered(self):
        tree = from_sexpr("(A (B) (C) (C) (B))")
        pattern = ("A", (("B", ()), ("C", ())))
        assert count_unordered(tree, pattern) >= count_ordered(tree, pattern)


class TestEmbeddingEnumeration:
    def test_embedding_count_matches_dp(self):
        from repro.query import iter_ordered_embeddings

        tree = from_sexpr("(A (B) (B) (C (B)))")
        pattern = ("A", (("B", ()), ("C", ())))
        embeddings = list(iter_ordered_embeddings(tree, pattern))
        assert len(embeddings) == count_ordered(tree, pattern)

    def test_embeddings_are_valid_mappings(self):
        from repro.query import iter_ordered_embeddings

        tree = from_sexpr("(A (B (C)) (B (C) (C)))")
        pattern = ("A", (("B", (("C", ()),)),))
        for embedding in iter_ordered_embeddings(tree, pattern):
            a, b, c = embedding  # query preorder: A, B, C
            assert tree.label_of(a) == "A"
            assert tree.label_of(b) == "B"
            assert tree.label_of(c) == "C"
            assert tree.parent_of(b) == a
            assert tree.parent_of(c) == b

    def test_embeddings_distinct(self):
        from repro.query import iter_ordered_embeddings

        tree = from_sexpr("(A (B) (B) (B))")
        pattern = ("A", (("B", ()), ("B", ())))
        embeddings = list(iter_ordered_embeddings(tree, pattern))
        assert len(embeddings) == len(set(embeddings)) == 3

    def test_no_embeddings_for_absent_pattern(self):
        from repro.query import iter_ordered_embeddings

        tree = from_sexpr("(A (B))")
        assert list(iter_ordered_embeddings(tree, ("A", (("Z", ()),)))) == []

    @given(labeled_trees(max_nodes=8), nested_trees(max_nodes=4))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_count_property(self, tree, pattern):
        from repro.query import iter_ordered_embeddings
        from repro.query.pattern import pattern_nodes

        if pattern_nodes(pattern) > 5:
            return
        embeddings = list(iter_ordered_embeddings(tree, pattern))
        assert len(embeddings) == count_ordered(tree, pattern)
        assert len(embeddings) == len(set(embeddings))


class TestOracleIdentities:
    """The three ground-truth paths must agree:

    matcher DP == multiplicity in the EnumTree output (per tree), and the
    unordered count == sum of ordered counts over arrangements.
    """

    @given(labeled_trees(max_nodes=9), nested_trees(max_nodes=4))
    @settings(max_examples=60, deadline=None)
    def test_matcher_equals_enumtree_multiplicity(self, tree, pattern):
        from repro.query.pattern import pattern_edges

        edges = pattern_edges(pattern)
        if not 1 <= edges <= 3:
            return
        multiplicity = Counter(enumerate_patterns(tree, 3))[pattern]
        assert count_ordered(tree, pattern) == multiplicity

    @given(labeled_trees(max_nodes=9), nested_trees(max_nodes=4))
    @settings(max_examples=40, deadline=None)
    def test_unordered_is_arrangement_sum(self, tree, pattern):
        from repro.query.pattern import arrangements

        total = sum(count_ordered(tree, a) for a in arrangements(pattern))
        assert count_unordered(tree, pattern) == total
