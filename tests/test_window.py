"""Tests for sliding-window pattern counting."""

import pytest

from repro.core import SketchTreeConfig, WindowedSketchTree
from repro.errors import ConfigError
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=50, s2=5, max_pattern_edges=2, n_virtual_streams=31, seed=6
)

EARLY = from_sexpr("(E (E1))")
LATE = from_sexpr("(L (L1))")


class TestConstruction:
    def test_rejects_topk(self):
        config = SketchTreeConfig(
            s1=10, s2=3, n_virtual_streams=31, topk_size=2
        )
        with pytest.raises(ConfigError):
            WindowedSketchTree(config, window_trees=10)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            WindowedSketchTree(CONFIG, window_trees=0)
        with pytest.raises(ConfigError):
            WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=20)

    def test_default_bucket_size(self):
        window = WindowedSketchTree(CONFIG, window_trees=80)
        assert window.bucket_trees == 10
        assert window.n_buckets == 8


class TestWindowSemantics:
    def test_old_trees_expire(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 20)   # fills the window with E
        window.ingest([LATE] * 40)    # pushes E entirely out
        assert window.estimate_ordered("(E (E1))") == pytest.approx(0.0, abs=3)
        covered = window.window_size_actual
        assert window.estimate_ordered("(L (L1))") == pytest.approx(
            covered, abs=5
        )

    def test_window_size_bounds(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 100)
        # Covered trees stay within [window, window + bucket).
        assert 20 <= window.window_size_actual < 25

    def test_before_window_fills_counts_everything(self):
        window = WindowedSketchTree(CONFIG, window_trees=50, bucket_trees=10)
        window.ingest([EARLY] * 7)
        assert window.window_size_actual == 7
        assert window.estimate_ordered("(E (E1))") == pytest.approx(7, abs=3)

    def test_bucket_count_bounded(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 500)
        assert window.n_live_buckets <= window.n_buckets + 1

    def test_mixed_window(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        window.ingest([EARLY] * 10 + [LATE] * 5)
        # The last 15 trees covered are at most 10 E + 5 L; E is expiring.
        early = window.estimate_ordered("(E (E1))")
        late = window.estimate_ordered("(L (L1))")
        assert late == pytest.approx(5, abs=3)
        assert early <= 10 + 3

    def test_unordered_and_sum(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=2)
        window.ingest([from_sexpr("(A (C) (B))")] * 8)
        assert window.estimate_unordered("(A (B) (C))") == pytest.approx(
            8, abs=4
        )
        total = window.estimate_sum(["(A (B))", "(A (C))"])
        assert total == pytest.approx(16, abs=6)

    def test_memory_report_scales_with_buckets(self):
        small = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        large = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=1)
        small.ingest([EARLY] * 10)
        large.ingest([EARLY] * 10)
        assert (
            large.memory_report().provisioned_sketch_bytes
            > small.memory_report().provisioned_sketch_bytes
        )

    def test_repr(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        assert "WindowedSketchTree" in repr(window)
