"""Tests for sliding-window pattern counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchTreeConfig, WindowedSketchTree
from repro.errors import ConfigError
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=50, s2=5, max_pattern_edges=2, n_virtual_streams=31, seed=6
)

EARLY = from_sexpr("(E (E1))")
LATE = from_sexpr("(L (L1))")


class TestConstruction:
    def test_accepts_topk(self):
        """Fold/unfold (merge-on-expiry) lifts the old topk_size ban; the
        tracker semantics live in tests/test_topk_merge.py."""
        config = SketchTreeConfig(
            s1=10, s2=3, n_virtual_streams=31, topk_size=2, seed=6
        )
        window = WindowedSketchTree(config, window_trees=10, bucket_trees=5)
        window.ingest([EARLY] * 20)
        assert window.n_trees == 20

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigError):
            WindowedSketchTree(CONFIG, window_trees=0)
        with pytest.raises(ConfigError):
            WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=20)

    def test_default_bucket_size(self):
        window = WindowedSketchTree(CONFIG, window_trees=80)
        assert window.bucket_trees == 10
        assert window.n_buckets == 8


class TestWindowSemantics:
    def test_old_trees_expire(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 20)   # fills the window with E
        window.ingest([LATE] * 40)    # pushes E entirely out
        assert window.estimate_ordered("(E (E1))") == pytest.approx(0.0, abs=3)
        covered = window.window_size_actual
        assert window.estimate_ordered("(L (L1))") == pytest.approx(
            covered, abs=5
        )

    def test_window_size_bounds(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 100)
        # Covered trees stay within [window, window + bucket).
        assert 20 <= window.window_size_actual < 25

    def test_before_window_fills_counts_everything(self):
        window = WindowedSketchTree(CONFIG, window_trees=50, bucket_trees=10)
        window.ingest([EARLY] * 7)
        assert window.window_size_actual == 7
        assert window.estimate_ordered("(E (E1))") == pytest.approx(7, abs=3)

    def test_bucket_count_bounded(self):
        window = WindowedSketchTree(CONFIG, window_trees=20, bucket_trees=5)
        window.ingest([EARLY] * 500)
        assert window.n_live_buckets <= window.n_buckets + 1

    def test_mixed_window(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        window.ingest([EARLY] * 10 + [LATE] * 5)
        # The last 15 trees covered are at most 10 E + 5 L; E is expiring.
        early = window.estimate_ordered("(E (E1))")
        late = window.estimate_ordered("(L (L1))")
        assert late == pytest.approx(5, abs=3)
        assert early <= 10 + 3

    def test_unordered_and_sum(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=2)
        window.ingest([from_sexpr("(A (C) (B))")] * 8)
        assert window.estimate_unordered("(A (B) (C))") == pytest.approx(
            8, abs=4
        )
        total = window.estimate_sum(["(A (B))", "(A (C))"])
        assert total == pytest.approx(16, abs=6)

    def test_memory_report_scales_with_buckets(self):
        small = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        large = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=1)
        small.ingest([EARLY] * 10)
        large.ingest([EARLY] * 10)
        assert (
            large.memory_report().provisioned_sketch_bytes
            > small.memory_report().provisioned_sketch_bytes
        )

    def test_repr(self):
        window = WindowedSketchTree(CONFIG, window_trees=10, bucket_trees=5)
        assert "WindowedSketchTree" in repr(window)


class TestUpdateBatch:
    """``update_batch`` must respect bucket boundaries bit-identically.

    A batch that straddles a bucket boundary has to be cut so each
    bucket's synopsis receives exactly the trees the per-tree loop would
    have given it — otherwise rotation happens at the wrong tree and the
    window covers the wrong suffix of the stream.
    """

    TREES = [
        from_sexpr(text)
        for text in ["(E (E1))", "(L (L1))", "(A (B) (C))", "(A (B (C)))"] * 5
    ]

    @staticmethod
    def bucket_states(window):
        """Per-live-bucket sketch counters, oldest bucket first."""
        return [
            {
                residue: matrix.counters.copy()
                for residue, matrix in bucket.streams.iter_sketches()
            }
            for bucket in window._live_buckets()
        ]

    def assert_same_window_state(self, a, b):
        assert a.n_trees_seen == b.n_trees_seen
        assert a.n_live_buckets == b.n_live_buckets
        left, right = self.bucket_states(a), self.bucket_states(b)
        assert len(left) == len(right)
        for bucket_a, bucket_b in zip(left, right):
            assert bucket_a.keys() == bucket_b.keys()
            for residue, counters in bucket_a.items():
                assert np.array_equal(counters, bucket_b[residue])

    def test_single_batch_across_boundaries(self):
        per_tree = WindowedSketchTree(CONFIG, window_trees=8, bucket_trees=4)
        batched = WindowedSketchTree(CONFIG, window_trees=8, bucket_trees=4)
        for tree in self.TREES:
            per_tree.update(tree)
        batched.update_batch(self.TREES)  # spans four full rotations
        self.assert_same_window_state(per_tree, batched)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=9), max_size=8))
    def test_any_chunking_bit_identical(self, chunk_sizes):
        per_tree = WindowedSketchTree(CONFIG, window_trees=6, bucket_trees=3)
        batched = WindowedSketchTree(CONFIG, window_trees=6, bucket_trees=3)
        position = 0
        for size in chunk_sizes:
            chunk = self.TREES[position : position + size]
            position += len(chunk)
            for tree in chunk:
                per_tree.update(tree)
            batched.update_batch(chunk)
        self.assert_same_window_state(per_tree, batched)
        for query in ["(E (E1))", "(A (B))"]:
            assert per_tree.estimate_ordered(query) == batched.estimate_ordered(
                query
            )

    def test_ingest_chunks_through_update_batch(self):
        looped = WindowedSketchTree(CONFIG, window_trees=8, bucket_trees=4)
        ingested = WindowedSketchTree(CONFIG, window_trees=8, bucket_trees=4)
        for tree in self.TREES:
            looped.update(tree)
        ingested.ingest(self.TREES, batch_trees=7)
        self.assert_same_window_state(looped, ingested)

    def test_ingest_rejects_bad_batch_trees(self):
        window = WindowedSketchTree(CONFIG, window_trees=8, bucket_trees=4)
        with pytest.raises(ConfigError):
            window.ingest(self.TREES, batch_trees=0)

    def test_stream_processor_batches_into_window(self):
        per_tree = WindowedSketchTree(CONFIG, window_trees=6, bucket_trees=3)
        batched = WindowedSketchTree(CONFIG, window_trees=6, bucket_trees=3)
        for tree in self.TREES:
            per_tree.update(tree)
        from repro.stream import StreamProcessor

        StreamProcessor([batched], batch_trees=5).run(self.TREES)
        self.assert_same_window_state(per_tree, batched)


class TestReadPathParity:
    """The window must answer every read the synopsis answers.

    The reference for each query method is the ``merged()`` synopsis —
    by linearity, bit-identical to a single :class:`SketchTree` fed the
    window's live trees — so these pin both *presence* of the delegated
    methods and exact agreement with whole-stream semantics.
    """

    TREES = [
        from_sexpr(text)
        for text in ["(A (B) (C))", "(A (B (C)))", "(E (E1))", "(A (C))"] * 4
    ]

    @staticmethod
    def window(bucket_trees=3):
        window = WindowedSketchTree(
            CONFIG, window_trees=9, bucket_trees=bucket_trees
        )
        window.ingest(TestReadPathParity.TREES)
        return window

    def test_estimate_sum_accepts_a_generator(self):
        """Regression: a generator argument must count in *every* live
        bucket, not just the first (which would silently undercount)."""
        window = self.window()
        assert window.n_live_buckets > 1  # the bug needs several buckets
        queries = ["(A (B))", "(A (C))"]
        from_list = window.estimate_sum(queries)
        from_generator = window.estimate_sum(q for q in queries)
        assert from_generator == from_list
        assert from_list != 0.0

    def test_estimate_sum_generator_matches_per_bucket_sum(self):
        window = self.window()
        queries = ["(A (B))", "(E (E1))"]
        expected = sum(
            bucket.estimate_sum(queries) for bucket in window._live_buckets()
        )
        assert window.estimate_sum(iter(queries)) == expected

    def test_estimate_or_delegates_to_live_buckets(self):
        window = self.window()
        query = "(A (B|C))"
        expected = sum(
            bucket.estimate_or(query) for bucket in window._live_buckets()
        )
        assert window.estimate_or(query) == expected
        assert window.estimate_or(query) != 0.0

    def test_self_join_size_matches_merged_synopsis(self):
        """Summed-counter SJ, not sum of per-bucket SJs: frequencies add
        across buckets and SJ is quadratic in them."""
        window = self.window()
        merged = window.merged()
        assert window.estimate_self_join_size() == pytest.approx(
            merged.estimate_self_join_size()
        )
        per_bucket = sum(
            b.estimate_self_join_size() for b in window._live_buckets()
        )
        # With the same tree repeated across buckets the per-bucket sum
        # is a strict undercount of the true combined quantity.
        assert per_bucket < merged.estimate_self_join_size()

    def test_ordered_interval_matches_merged_synopsis(self):
        window = self.window()
        merged = window.merged()
        ours = window.estimate_ordered_interval("(A (B))", confidence=0.95)
        reference = merged.estimate_ordered_interval("(A (B))", confidence=0.95)
        assert ours.estimate == reference.estimate
        assert ours.half_width == reference.half_width
        assert ours.confidence == reference.confidence

    def test_ordered_interval_unallocated_stream_is_exact_zero(self):
        window = WindowedSketchTree(CONFIG, window_trees=9, bucket_trees=3)
        interval = window.estimate_ordered_interval("(A (B))")
        assert interval.estimate == 0.0
        assert interval.half_width == 0.0

    def test_merged_is_bit_identical_to_single_synopsis(self):
        from repro.core import SketchTree

        window = self.window(bucket_trees=4)
        live_trees = self.TREES[-window.window_size_actual :]
        reference = SketchTree(CONFIG)
        reference.update_batch(live_trees)
        merged = window.merged()
        for query in ["(A (B))", "(A (C))", "(E (E1))"]:
            assert merged.estimate_ordered(query) == reference.estimate_ordered(
                query
            )
