"""Tests for virtual streams: routing, lazy allocation, combination."""

import numpy as np
import pytest

from repro.core import VirtualStreams, is_prime, next_prime
from repro.errors import ConfigError


class TestPrimes:
    @pytest.mark.parametrize("n,expected", [
        (0, False), (1, False), (2, True), (3, True), (4, False),
        (29, True), (229, True), (230, False), (7919, True),
    ])
    def test_is_prime(self, n, expected):
        assert is_prime(n) is expected

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(228) == 229
        assert next_prime(229) == 229


class TestRouting:
    def test_residue_partition(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0)
        for value in (0, 5, 31, 62, 10**12):
            assert streams.residue(value) == value % 31

    def test_nonprime_rejected(self):
        with pytest.raises(ConfigError):
            VirtualStreams(30, s1=4, s2=2)

    def test_single_stream_allowed(self):
        streams = VirtualStreams(1, s1=4, s2=2, seed=0)
        assert streams.residue(12345) == 0

    def test_lazy_allocation(self):
        streams = VirtualStreams(229, s1=4, s2=2, seed=0)
        assert streams.n_allocated == 0
        streams.sketch(5).update(5, 1)
        assert streams.n_allocated == 1
        assert streams.sketch_if_allocated(6) is None

    def test_sketches_share_xi(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0)
        assert streams.sketch(1).xi is streams.sketch(2).xi


class TestCombination:
    def test_combined_counters_sum(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0)
        streams.sketch(1).update(1, 10)
        streams.sketch(2).update(2, 7)
        combined = streams.combined_counters([1, 2])
        expected = streams.sketch(1).counters + streams.sketch(2).counters
        assert np.array_equal(combined, expected)

    def test_combined_counters_deduplicates_residues(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0)
        streams.sketch(1).update(1, 10)
        once = streams.combined_counters([1])
        twice = streams.combined_counters([1, 1])
        assert np.array_equal(once, twice)

    def test_combined_counters_missing_streams_are_zero(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0)
        assert not streams.combined_counters([3, 4]).any()

    def test_view_estimates_union(self):
        # Values in different virtual streams: the combined view must
        # estimate both (Section 5.3's X_i + X_j construction).  The
        # combined estimate is unbiased but carries cross-stream noise, so
        # only a loose bound is asserted here.
        streams = VirtualStreams(31, s1=40, s2=5, seed=1)
        streams.sketch(streams.residue(1)).update(1, 100)
        streams.sketch(streams.residue(2)).update(2, 50)
        view = streams.view([streams.residue(1), streams.residue(2)], [1, 2])
        assert view.estimate_sum([1, 2]) == pytest.approx(150.0, abs=40)

    def test_grouped_sum_is_exact_across_streams(self):
        # The per-stream refinement removes the cross-stream noise: with
        # one distinct value per stream the partial estimates are exact.
        streams = VirtualStreams(31, s1=40, s2=5, seed=1)
        streams.sketch(streams.residue(1)).update(1, 100)
        streams.sketch(streams.residue(2)).update(2, 50)
        assert streams.estimate_sum_grouped([1, 2]) == pytest.approx(150.0)

    def test_grouped_sum_missing_stream_contributes_zero(self):
        streams = VirtualStreams(31, s1=10, s2=3, seed=0)
        streams.sketch(streams.residue(5)).update(5, 9)
        assert streams.estimate_sum_grouped([5, 6]) == pytest.approx(9.0)

    def test_topk_trackers_per_stream(self):
        streams = VirtualStreams(31, s1=30, s2=5, seed=2, topk_size=2)
        streams.sketch(0).update(0, 500)
        streams.tracker(0).process(0)
        assert streams.tracker(0).n_tracked == 1
        # tracker() is non-allocating: a stream that never received a
        # value has tracked nothing, and the query path must not mutate
        # the stream table.
        assert streams.tracker(1) is None
        assert streams.n_allocated == 1

    def test_tracker_none_when_disabled(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0, topk_size=0)
        assert streams.tracker(3) is None

    def test_combined_adjustment(self):
        streams = VirtualStreams(31, s1=40, s2=5, seed=3, topk_size=1)
        value = 7
        streams.sketch(streams.residue(value)).update(value, 300)
        streams.tracker(streams.residue(value)).process(value)
        adjust = streams.combined_adjustment([value])
        assert adjust is not None
        # With compensation the view recovers the full frequency.
        view = streams.view([streams.residue(value)], [value])
        assert view.estimate(value) == pytest.approx(300.0)

    def test_combined_adjustment_none_cases(self):
        streams = VirtualStreams(31, s1=4, s2=2, seed=0, topk_size=0)
        assert streams.combined_adjustment([1, 2]) is None
