"""Tests for the structural summary and * / // query resolution."""

import pytest

from repro.errors import PatternError, QueryError
from repro.query import QueryNode, StructuralSummary
from repro.trees import from_sexpr


def summary_of(*sexprs: str) -> StructuralSummary:
    summary = StructuralSummary()
    summary.add_trees(from_sexpr(s) for s in sexprs)
    return summary


class TestQueryNode:
    def test_from_sexpr_plain(self):
        query = QueryNode.from_sexpr("(A (B) (C))")
        assert query.label == "A"
        assert [c.label for c in query.children] == ["B", "C"]
        assert query.is_plain()

    def test_from_sexpr_descendant_and_wildcard(self):
        query = QueryNode.from_sexpr("(A (//B) (*))")
        assert query.children[0].edge == "descendant"
        assert query.children[1].label == "*"
        assert not query.is_plain()

    def test_descendant_prefix_requires_label(self):
        with pytest.raises(PatternError):
            QueryNode.from_sexpr("(A (//))")

    def test_to_pattern_plain_only(self):
        assert QueryNode.from_sexpr("(A (B))").to_pattern() == ("A", (("B", ()),))
        with pytest.raises(QueryError):
            QueryNode.from_sexpr("(A (//B))").to_pattern()
        with pytest.raises(QueryError):
            QueryNode.from_sexpr("(* (B))").to_pattern()

    def test_invalid_edge_kind(self):
        with pytest.raises(PatternError):
            QueryNode("A", edge="sibling")


class TestSummaryConstruction:
    def test_counts_distinct_paths(self):
        summary = summary_of("(A (B) (C))", "(A (B (D)))")
        # Paths: A, A/B, A/C, A/B/D.
        assert summary.n_paths == 4

    def test_incremental(self):
        summary = StructuralSummary()
        summary.add_tree(from_sexpr("(A (B))"))
        assert summary.n_paths == 2
        summary.add_tree(from_sexpr("(A (B))"))
        assert summary.n_paths == 2  # no new paths
        summary.add_tree(from_sexpr("(X (B))"))
        assert summary.n_paths == 4


class TestResolution:
    def test_paper_figure7_wildcard(self):
        # Summary: A with children B and C, B with child C.
        summary = summary_of("(A (B (C)) (C))")
        query = QueryNode.from_sexpr("(A (*))")
        resolved = summary.resolve(query)
        assert resolved == {
            ("A", (("B", ()),)),
            ("A", (("C", ()),)),
        }

    def test_paper_figure7_descendant(self):
        # Q2 = A//C resolves to A/C and A/B/C, materialising B.
        summary = summary_of("(A (B (C)) (C))")
        query = QueryNode.from_sexpr("(A (//C))")
        resolved = summary.resolve(query)
        assert resolved == {
            ("A", (("C", ()),)),
            ("A", (("B", (("C", ()),)),)),
        }

    def test_query_anchors_anywhere(self):
        summary = summary_of("(R (A (B)))")
        resolved = summary.resolve(QueryNode.from_sexpr("(A (B))"))
        assert resolved == {("A", (("B", ()),))}

    def test_unmatchable_query_empty(self):
        summary = summary_of("(A (B))")
        assert summary.resolve(QueryNode.from_sexpr("(A (Z))")) == set()

    def test_wildcard_root(self):
        summary = summary_of("(A (X))", "(B (X))")
        resolved = summary.resolve(QueryNode.from_sexpr("(* (X))"))
        assert resolved == {("A", (("X", ()),)), ("B", (("X", ()),))}

    def test_descendant_with_wildcard_target(self):
        summary = summary_of("(A (B (C)))")
        resolved = summary.resolve(QueryNode.from_sexpr("(A (//*))"))
        assert resolved == {
            ("A", (("B", ()),)),
            ("A", (("B", (("C", ()),)),)),
        }

    def test_multi_branch(self):
        summary = summary_of("(A (B) (C))")
        resolved = summary.resolve(QueryNode.from_sexpr("(A (*) (*))"))
        # Each wildcard child resolves independently to B or C.
        assert ("A", (("B", ()), ("C", ()))) in resolved

    def test_max_edges_enforced(self):
        summary = summary_of("(A (B (C (D (E)))))")
        query = QueryNode.from_sexpr("(A (//E))")
        with pytest.raises(QueryError):
            summary.resolve(query, max_edges=2)

    def test_resolved_patterns_consistent_with_data(self):
        # Resolution must never invent patterns the summary cannot contain.
        summary = summary_of("(A (B (C)))", "(A (D))")
        resolved = summary.resolve(QueryNode.from_sexpr("(A (//C))"))
        assert resolved == {("A", (("B", (("C", ()),)),))}

    def test_resolution_total_count_identity(self):
        """Sum of resolved-pattern counts equals the extended query's
        ground-truth count (single-branch case, the paper's identity)."""
        from repro.core import ExactCounter

        trees = [
            from_sexpr("(A (B (C)) (C))"),
            from_sexpr("(A (C))"),
            from_sexpr("(A (B (C)))"),
        ]
        summary = StructuralSummary()
        summary.add_trees(trees)
        exact = ExactCounter(3).ingest(trees)
        resolved = summary.resolve(QueryNode.from_sexpr("(A (//C))"))
        total = exact.count_sum(resolved)
        # Direct count: A/C occurs in trees 1 and 2 (2 total) and A/B/C in
        # trees 1 and 3 (2 total).
        assert total == 2 + 2
