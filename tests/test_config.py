"""Tests for configuration validation and memory reporting."""

import pytest

from repro.core import MemoryReport, SketchTreeConfig
from repro.errors import ConfigError


class TestConfigValidation:
    def test_defaults_valid(self):
        config = SketchTreeConfig()
        assert config.n_instances == config.s1 * config.s2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"s1": 0},
            {"s2": 0},
            {"max_pattern_edges": 0},
            {"n_virtual_streams": 0},
            {"n_virtual_streams": 30},       # not prime
            {"topk_size": -1},
            {"topk_probability": 1.5},
            {"independence": 2},             # AMS needs four-wise
            {"mapping": "sha"},
            {"fingerprint_degree": 4},
            {"fingerprint_degree": 64},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SketchTreeConfig(**kwargs)

    def test_prime_virtual_streams_accepted(self):
        SketchTreeConfig(n_virtual_streams=229)
        SketchTreeConfig(n_virtual_streams=1)  # 1 = partitioning disabled

    def test_frozen(self):
        config = SketchTreeConfig()
        with pytest.raises(AttributeError):
            config.s1 = 99


class TestMemoryReport:
    def test_paper_figure10a_sketch_memory(self):
        """s1=25, s2=7, p=229 must give ~316 KB of sketch+seed memory, the
        low end of Figure 10(a)'s reported range."""
        report = MemoryReport(
            provisioned_sketch_bytes=25 * 7 * 229 * 8,
            provisioned_topk_bytes=0,
            seed_bytes=25 * 7 * 4 * 8,
            allocated_sketch_bytes=0,
            allocated_topk_bytes=0,
        )
        assert 300 * 1024 <= report.provisioned_total <= 330 * 1024

    def test_totals(self):
        report = MemoryReport(100, 50, 10, 80, 40)
        assert report.provisioned_total == 160
        assert report.allocated_total == 130

    def test_format_units(self):
        report = MemoryReport(2 << 20, 512, 100, 0, 0)
        text = report.format()
        assert "MB" in text and "B" in text
