"""Tests for the real-corpus streaming readers (repro.corpora)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpora import (
    DBLP_RECORD_TAGS,
    CorpusReader,
    ForestSplitter,
    NormalizeOptions,
    iter_dblp_trees,
    iter_parse_ptb,
    normalize_node,
    parse_export,
    parse_ptb,
    strip_function,
)
from repro.errors import ConfigError, CorpusParseError, XmlParseError
from repro.stream import StreamProcessor
from repro.trees import from_nested, parse_forest, to_xml
from repro.trees.tree import LabeledTree
from tests.strategies import nested_trees

from pathlib import Path

FIXTURES = Path(__file__).parent / "fixtures" / "corpora"


# ---------------------------------------------------------------------------
# Penn-Treebank bracketed trees
# ---------------------------------------------------------------------------

class TestPtbParser:
    def test_simple_tree(self):
        (tree,) = parse_ptb("(S (NP (DT the) (NN cat)) (VP (VBD sat)))")
        assert tree.to_nested() == (
            "S",
            (
                ("NP", (("DT", (("the", ()),)), ("NN", (("cat", ()),)))),
                ("VP", (("VBD", (("sat", ()),)),)),
            ),
        )

    def test_wrapper_bracket_unwrapped(self):
        (tree,) = parse_ptb("( (S (NN dog)) )")
        assert tree.label_of(tree.root) == "S"

    def test_multiple_trees_stream_lazily(self):
        iterator = iter_parse_ptb("(A (x))\n(B (y))\n(C (z))")
        first = next(iterator)
        assert first.label_of(first.root) == "A"
        assert [t.label_of(t.root) for t in iterator] == ["B", "C"]

    def test_tree_spanning_lines(self):
        (tree,) = parse_ptb(["(S\n", "  (NP (DT the))\n", "  (VP (VBD ran)))\n"])
        assert tree.label_of(tree.root) == "S"
        assert tree.n_nodes == 7

    def test_deep_tree_no_recursion_error(self):
        depth = 3000
        text = "(A " * depth + "(leaf x)" + ")" * depth
        (tree,) = parse_ptb(text)
        assert tree.n_nodes == depth + 2
        assert tree.depth() == depth + 1

    def test_mixed_terminal_after_child(self):
        (tree,) = parse_ptb("(NP (DT the) dog)")
        assert tree.to_nested() == ("NP", (("DT", (("the", ()),)), ("dog", ())))

    @pytest.mark.parametrize(
        "text",
        [
            "(S (NP (DT the))",   # unbalanced: missing ')'
            "(S (NP)) )",         # unbalanced: stray ')'
            "()",                 # empty bracket
            "( (A (x)) (B (y)) )",  # label-less bracket, two children
            "stray (S (x))",      # token outside brackets
        ],
    )
    def test_malformed_raises_corpus_parse_error(self, text):
        with pytest.raises(CorpusParseError):
            parse_ptb(text)

    def test_error_carries_line_and_column(self):
        with pytest.raises(CorpusParseError) as excinfo:
            parse_ptb(["(S (NP (DT the)))\n", "  )\n"], path="sample.mrg")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
        assert excinfo.value.path == "sample.mrg"
        assert "sample.mrg" in str(excinfo.value)


class TestNormalization:
    def test_strip_function(self):
        assert strip_function("NP-SBJ") == "NP"
        assert strip_function("NP-SBJ-1") == "NP"
        assert strip_function("NP=2") == "NP"
        assert strip_function("-NONE-") == "-NONE-"
        assert strip_function("-LRB-") == "-LRB-"
        assert strip_function("PRP$") == "PRP$"

    def test_functions_removed_only_on_internal_nodes(self):
        options = NormalizeOptions(functions="remove")
        (tree,) = parse_ptb("(S (NP-SBJ (NN x-y)))", normalize=options)
        # The terminal token x-y is a value, not a syntactic label.
        assert tree.to_nested() == ("S", (("NP", (("NN", (("x-y", ()),)),)),))

    def test_trace_removal_prunes_empty_ancestors(self):
        options = NormalizeOptions(remove_empty=True)
        (tree,) = parse_ptb(
            "(S (NP (NN dog)) (SBAR (-NONE- *T*-1)))", normalize=options
        )
        assert tree.to_nested() == ("S", (("NP", (("NN", (("dog", ()),)),)),))

    def test_all_empty_tree_skipped(self):
        options = NormalizeOptions(remove_empty=True)
        assert parse_ptb("(S (-NONE- *)) (A (x))", normalize=options) != []
        trees = parse_ptb("(S (-NONE- *)) (A (x))", normalize=options)
        assert [t.label_of(t.root) for t in trees] == ["A"]

    def test_punctuation_removal(self):
        options = NormalizeOptions(punct="remove")
        (tree,) = parse_ptb("(S (NP (NN dog)) (. .) (, ,))", normalize=options)
        assert tree.to_nested() == ("S", (("NP", (("NN", (("dog", ()),)),)),))

    def test_invalid_option_rejected(self):
        with pytest.raises(ConfigError):
            NormalizeOptions(functions="bogus")
        with pytest.raises(ConfigError):
            NormalizeOptions(punct="move")

    @given(nested_trees(max_nodes=8))
    @settings(max_examples=50, deadline=None)
    def test_noop_normalization_preserves_tree(self, nested):
        from repro.trees.builders import node_from_nested

        root = node_from_nested(nested)
        full = NormalizeOptions(functions="remove", punct="remove", remove_empty=True)
        # Single-letter labels carry no function suffixes, traces or
        # punctuation, so even the full option set must be the identity.
        normalized = normalize_node(root, full)
        assert LabeledTree(normalized) == from_nested(nested)


# ---------------------------------------------------------------------------
# Negra export format
# ---------------------------------------------------------------------------

EXPORT_BLOCK = """\
#BOS 1
the\tDT\t--\tNK\t500
cat\tNN\t--\tNK\t500
sat\tVBD\t--\tHD\t501
#500\tNP\t--\tSB\t501
#501\tS\t--\t--\t0
#EOS 1
"""


class TestExportReader:
    def test_basic_block(self):
        (tree,) = parse_export(EXPORT_BLOCK)
        assert tree.to_nested() == (
            "S",
            (
                ("NP", (("DT", (("the", ()),)), ("NN", (("cat", ()),)))),
                ("VBD", (("sat", ()),)),
            ),
        )

    def test_multiple_roots_get_virtual_root(self):
        text = (
            "#BOS 1\nhi\tUH\t--\t--\t0\n!\t$.\t--\t--\t0\n#EOS 1\n"
        )
        (tree,) = parse_export(text)
        assert tree.label_of(tree.root) == "VROOT"
        assert tree.fanout_of(tree.root) == 2

    def test_functions_add(self):
        (tree,) = parse_export(EXPORT_BLOCK, functions="add")
        labels = set(tree.labels)
        assert "NP-SB" in labels and "S" in labels

    def test_sibling_order_by_first_terminal(self):
        # Nonterminal declared before its right sibling terminal, but its
        # span starts later: order must follow the terminals.
        text = (
            "#BOS 1\n"
            "b\tB\t--\t--\t500\n"
            "a\tA\t--\t--\t0\n"
            "#500\tNT\t--\t--\t0\n"
            "#EOS 1\n"
        )
        (tree,) = parse_export(text)
        kids = [tree.label_of(kid) for kid in tree.children_of(tree.root)]
        assert kids == ["NT", "A"]

    @pytest.mark.parametrize(
        "text",
        [
            "#BOS 1\nw\tT\t--\t--\t999\n#EOS 1\n",  # unknown parent
            "#BOS 1\nw\tT\t--\t--\t0\n",             # missing #EOS
            "#EOS 1\n",                               # EOS without BOS
            "#BOS 1\nw\tT\t--\t--\t0\n#EOS 2\n",     # number mismatch
            "w\tT\t--\t--\t0\n",                      # node outside block
            "#BOS 1\nw\tT\t--\tx\n#EOS 1\n",          # too few columns
            "#BOS 1\nw\tT\t--\t--\tX\n#EOS 1\n",     # non-numeric parent
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(CorpusParseError):
            parse_export(text)

    def test_comments_and_blank_lines_ignored(self):
        assert len(parse_export("%% header\n\n" + EXPORT_BLOCK)) == 1


# ---------------------------------------------------------------------------
# DBLP XML streaming
# ---------------------------------------------------------------------------

DBLP_FIXTURE = FIXTURES / "dblp_sample.xml"


class TestDblpReader:
    def test_fixture_record_count_and_tags(self):
        trees = list(iter_dblp_trees(str(DBLP_FIXTURE)))
        assert len(trees) == 8
        assert all(t.label_of(t.root) in DBLP_RECORD_TAGS for t in trees)

    def test_chunked_equals_whole_document(self):
        text = DBLP_FIXTURE.read_text()
        inner = text[text.index("<dblp>") + len("<dblp>") : text.rindex("</dblp>")]
        whole = parse_forest(inner)
        for chunk_chars in (1, 7, 64, 1 << 16):
            chunked = list(
                iter_dblp_trees(str(DBLP_FIXTURE), chunk_chars=chunk_chars)
            )
            assert chunked == whole

    def test_record_tags_filter(self):
        articles = list(
            iter_dblp_trees(str(DBLP_FIXTURE), record_tags={"article"})
        )
        assert len(articles) == 3
        assert all(t.label_of(t.root) == "article" for t in articles)

    def test_keep_attributes_false(self):
        trees = list(iter_dblp_trees(str(DBLP_FIXTURE), keep_attributes=False))
        assert not any(label.startswith("@") for t in trees for label in t.labels)

    def test_entities_and_cdata_decoded(self):
        trees = list(iter_dblp_trees(str(DBLP_FIXTURE)))
        labels = {label for tree in trees for label in tree.labels}
        assert 'On <Tree> Synopses: a "Sketch" Approach' in labels
        assert "Sorting & Searching <fast>" in labels
        assert "Gödel Numbers for Labeled Trees" in labels
        assert 'A"1"' in labels  # &quot; inside an attribute value

    def test_truncated_document_raises(self, tmp_path):
        truncated = tmp_path / "bad.xml"
        truncated.write_text("<dblp><article><title>x</title>")
        with pytest.raises(XmlParseError):
            list(iter_dblp_trees(str(truncated)))

    def test_malformed_record_error_carries_document_offset(self, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text("<dblp>\n<article><title>x</wrong></article>\n</dblp>")
        with pytest.raises(XmlParseError) as excinfo:
            list(iter_dblp_trees(str(bad)))
        assert "document offset 7" in str(excinfo.value)

    def test_splitter_buffer_stays_bounded(self):
        text = DBLP_FIXTURE.read_text()
        splitter = ForestSplitter()
        high_water = 0
        for position in range(0, len(text), 32):
            splitter.feed(text[position : position + 32])
            high_water = max(high_water, len(splitter.buffer))
        # Memory is one record + one chunk, never the whole document.
        longest_record = max(
            len(record) for record in text.split("</article>")
        )
        assert high_water <= longest_record + 64
        assert splitter.done

    @given(nested_trees(max_nodes=8), st.integers(min_value=1, max_value=33))
    @settings(max_examples=40, deadline=None)
    def test_splitter_roundtrip_property(self, nested, chunk_chars):
        # Any serialisable forest wrapped in a root tag must split back
        # into per-record documents identically, whatever the chunking.
        from repro.corpora.dblp import iter_split_records

        tree = from_nested(nested)
        record = to_xml(tree)
        document = f"<root>{record}{record}</root>"
        chunks = [
            document[i : i + chunk_chars]
            for i in range(0, len(document), chunk_chars)
        ]
        records = list(iter_split_records(chunks))
        assert [text for _, text in records] == [record, record]
        assert [parse_forest(text)[0] for _, text in records] == [tree, tree]


# ---------------------------------------------------------------------------
# CorpusReader: globs, encodings, option validation
# ---------------------------------------------------------------------------

class TestCorpusReader:
    def test_glob_streams_files_in_sorted_order(self):
        reader = CorpusReader(str(FIXTURES / "wsj_sample_*.mrg"))
        assert [p.name for p in reader.files()] == [
            "wsj_sample_00.mrg",
            "wsj_sample_01.mrg",
        ]
        assert len(reader.trees()) == 11

    def test_multiple_patterns_deduplicated(self):
        reader = CorpusReader(
            [
                str(FIXTURES / "wsj_sample_00.mrg"),
                str(FIXTURES / "wsj_sample_*.mrg"),
            ]
        )
        assert len(reader.files()) == 2

    def test_no_match_raises_config_error(self):
        with pytest.raises(ConfigError):
            CorpusReader(str(FIXTURES / "nothing_*.mrg")).files()

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            CorpusReader("x.mrg", format="conll")

    def test_dblp_rejects_treebank_options(self):
        with pytest.raises(ConfigError):
            CorpusReader("d.xml", format="dblp-xml", functions="remove")

    def test_functions_add_only_for_export(self):
        with pytest.raises(ConfigError):
            CorpusReader("x.mrg", format="ptb", functions="add")

    def test_encoding_option(self, tmp_path):
        corpus = tmp_path / "latin.mrg"
        corpus.write_bytes("(S (NN caf\xe9))".encode("latin-1"))
        (tree,) = CorpusReader(str(corpus), encoding="latin-1").trees()
        assert "café" in tree.labels

    def test_normalisation_options_forwarded(self):
        reader = CorpusReader(
            str(FIXTURES / "wsj_sample_*.mrg"),
            functions="remove",
            punct="remove",
            remove_empty=True,
        )
        labels = {label for tree in reader.trees() for label in tree.labels}
        assert "NP" in labels
        assert not any("-SBJ" in label for label in labels)
        assert "-NONE-" not in labels and "." not in labels


# ---------------------------------------------------------------------------
# Integration: fixtures through StreamProcessor into a synopsis
# ---------------------------------------------------------------------------

class TestStreamIntegration:
    @pytest.mark.parametrize(
        "kwargs, expected_trees",
        [
            (dict(path="wsj_sample_*.mrg", format="ptb"), 11),
            (dict(path="negra_sample.export", format="export"), 3),
            (dict(path="dblp_sample.xml", format="dblp-xml"), 8),
        ],
    )
    def test_fixtures_stream_through_processor(self, kwargs, expected_trees):
        from repro import SketchTree, SketchTreeConfig

        kwargs = dict(kwargs, path=str(FIXTURES / kwargs["path"]))
        synopsis = SketchTree(
            SketchTreeConfig(
                s1=20, s2=5, max_pattern_edges=2, n_virtual_streams=31, seed=3
            )
        )
        stats = StreamProcessor([synopsis]).run(CorpusReader(**kwargs))
        assert stats.n_trees == expected_trees
        assert synopsis.n_trees == expected_trees
        assert synopsis.n_values > 0

    def test_estimates_track_exact_on_fixture_corpus(self):
        from repro import ExactCounter, SketchTree, SketchTreeConfig

        trees = CorpusReader(
            str(FIXTURES / "dblp_sample.xml"), format="dblp-xml"
        ).trees()
        config = SketchTreeConfig(
            s1=64, s2=7, max_pattern_edges=2, n_virtual_streams=229, seed=11
        )
        synopsis = SketchTree(config).ingest(trees)
        exact = ExactCounter(2).ingest(trees)
        pattern, truth = exact.counts.most_common(1)[0]
        estimate = synopsis.estimate_ordered(pattern)
        assert truth > 0
        assert abs(estimate - truth) / truth < 0.5

    def test_cli_stats_accepts_corpus(self, capsys):
        from repro.cli import main

        code = main(
            [
                "stats",
                "--corpus",
                str(FIXTURES / "wsj_sample_00.mrg"),
                "--strip-functions",
                "--n-trees",
                "0",
                "--format",
                "json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "processed 6 trees" in captured.err
