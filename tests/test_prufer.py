"""Tests for extended Prüfer sequences (construction + reconstruction)."""

import pytest
from hypothesis import given

from repro.errors import TreeError
from repro.prufer import (
    PruferSequences,
    prufer_of_nested,
    prufer_of_tree,
    tree_from_prufer,
)
from repro.trees import from_nested, from_sexpr
from tests.strategies import labeled_trees, nested_trees


class TestConstruction:
    def test_paper_example_1_t1(self):
        # Figure 3, T1: the chain X -> Y -> Z gives LPS = Z Y X, NPS = 2 3 4.
        sequences = prufer_of_tree(from_sexpr("(X (Y (Z)))"))
        assert sequences.lps == ("Z", "Y", "X")
        assert sequences.nps == (2, 3, 4)

    def test_paper_example_1_t2(self):
        # Figure 3, T2: X with children Y and Z (both leaves) gives
        # LPS = Y X Z X, NPS = 2 5 4 5.
        sequences = prufer_of_tree(from_sexpr("(X (Y) (Z))"))
        assert sequences.lps == ("Y", "X", "Z", "X")
        assert sequences.nps == (2, 5, 4, 5)

    def test_single_node(self):
        sequences = prufer_of_nested(("A", ()))
        assert sequences.lps == ("A",)
        assert sequences.nps == (2,)

    def test_leaf_labels_survive_via_extension(self):
        # Without extension, leaf labels would be lost; extended sequences
        # must contain every original label.
        tree = from_sexpr("(A (B) (C (D)))")
        sequences = prufer_of_tree(tree)
        assert set(sequences.lps) == {"A", "B", "C", "D"}

    def test_length_is_extended_nodes_minus_one(self):
        tree = from_sexpr("(A (B) (C))")  # 3 nodes, 2 leaves -> 5 extended
        assert len(prufer_of_tree(tree)) == 4

    def test_nested_and_tree_paths_agree(self):
        tree = from_sexpr("(A (B (C) (D)) (E))")
        assert prufer_of_tree(tree) == prufer_of_nested(tree.to_nested())

    def test_rejects_malformed_nested(self):
        with pytest.raises(TreeError):
            prufer_of_nested("A")
        with pytest.raises(TreeError):
            prufer_of_nested(("A", ("oops",)))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TreeError):
            PruferSequences(("A",), (1, 2))

    def test_interleaved(self):
        sequences = PruferSequences(("A", "B"), (2, 4))
        assert sequences.interleaved() == ("A", 2, "B", 4)

    def test_deep_chain_no_recursion_error(self):
        nested = ("A", ())
        for _ in range(4000):
            nested = ("A", (nested,))
        sequences = prufer_of_nested(nested)
        assert len(sequences) == 4001  # 4001 original + 1 dummy - 1


class TestReconstruction:
    def test_roundtrip_simple(self):
        tree = from_sexpr("(A (B) (C (D) (E)))")
        assert tree_from_prufer(prufer_of_tree(tree)) == tree

    def test_roundtrip_single_node(self):
        tree = from_nested("A")
        assert tree_from_prufer(prufer_of_tree(tree)) == tree

    def test_empty_sequences_rejected(self):
        with pytest.raises(TreeError):
            tree_from_prufer(PruferSequences((), ()))

    def test_invalid_parent_pointer_rejected(self):
        # NPS[i-1] must exceed i in a postorder parent array.
        with pytest.raises(TreeError):
            tree_from_prufer(PruferSequences(("A", "A"), (1, 3)))

    def test_conflicting_labels_rejected(self):
        with pytest.raises(TreeError):
            tree_from_prufer(PruferSequences(("A", "B"), (3, 3)))

    def test_non_extension_encoding_rejected(self):
        # A structurally valid parent array that the extension rule could
        # not have produced (internal node with a dummy *and* a real child).
        with pytest.raises(TreeError):
            tree_from_prufer(PruferSequences(("A", "B", "A"), (4, 3, 4)))

    @given(labeled_trees(max_nodes=12))
    def test_roundtrip_property(self, tree):
        assert tree_from_prufer(prufer_of_tree(tree)) == tree

    @given(nested_trees(max_nodes=12))
    def test_injectivity_property(self, nested):
        # Sequences determine the tree: same sequences -> same tree.
        sequences = prufer_of_nested(nested)
        assert tree_from_prufer(sequences).to_nested() == nested

    @given(nested_trees(max_nodes=10), nested_trees(max_nodes=10))
    def test_distinct_trees_distinct_sequences(self, a, b):
        if a != b:
            assert prufer_of_nested(a) != prufer_of_nested(b)
