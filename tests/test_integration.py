"""Randomised end-to-end consistency and failure-injection tests.

These tie the whole pipeline together: random streams flow through both
the synopsis and the exact counter, and every estimate must sit within
the tolerance Theorem 1 predicts from the stream's *actual* self-join
size — the strongest end-to-end statement the theory licenses.
"""

import math
import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Count, ExactCounter, SketchTree, SketchTreeConfig
from repro.datasets import DblpGenerator, TreebankGenerator
from repro.errors import ReproError
from repro.trees import from_nested
from tests.strategies import nested_trees


def random_stream(seed, n_trees=40, max_nodes=8):
    rng = random.Random(seed)
    trees = []
    for _ in range(n_trees):
        # Trees drawn from a small shape pool so patterns repeat.
        depth = rng.randrange(1, 4)
        node = ("L%d" % rng.randrange(3), ())
        for _ in range(depth):
            width = rng.randrange(1, 3)
            node = (
                "L%d" % rng.randrange(3),
                tuple(node if i == 0 else ("L%d" % rng.randrange(3), ())
                      for i in range(width)),
            )
        trees.append(from_nested(node))
    return trees


class TestEndToEndConsistency:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_estimates_within_theoretical_tolerance(self, seed):
        trees = random_stream(seed)
        k = 3
        config = SketchTreeConfig(
            s1=100, s2=7, max_pattern_edges=k, n_virtual_streams=31,
            seed=seed + 50,
        )
        synopsis = SketchTree(config)
        exact = ExactCounter(k)
        for tree in trees:
            synopsis.update(tree)
            exact.update(tree)
        # Per-stream self-join sizes bound each estimate's deviation.
        encoder = synopsis.encoder
        checked = 0
        for pattern, count in exact.counts.most_common(25):
            value = encoder.encode(pattern)
            residue = synopsis.streams.residue(value)
            stream_sj = sum(
                c * c
                for p, c in exact.counts.items()
                if synopsis.streams.residue(encoder.encode(p)) == residue
            )
            estimate = synopsis.estimate_ordered(pattern)
            # 6-sigma of the s1-group variance bound: essentially certain.
            tolerance = 6 * math.sqrt(stream_sj / config.s1)
            assert abs(estimate - count) <= tolerance + 1e-9
            checked += 1
        assert checked > 0

    @pytest.mark.parametrize("generator_cls", [TreebankGenerator, DblpGenerator])
    def test_real_shaped_streams(self, generator_cls):
        trees = list(generator_cls(seed=3).generate(60))
        k = 3
        synopsis = SketchTree(
            SketchTreeConfig(s1=120, s2=7, max_pattern_edges=k,
                             n_virtual_streams=229, topk_size=4, seed=9)
        )
        exact = ExactCounter(k)
        for tree in trees:
            synopsis.update(tree)
            exact.update(tree)
        # The top-5 patterns are (almost surely) tracked exactly or
        # estimated tightly.
        for pattern, count in exact.counts.most_common(5):
            estimate = synopsis.estimate_ordered(pattern)
            assert abs(estimate - count) <= max(10, 0.35 * count)

    def test_unordered_and_sum_consistency(self):
        trees = random_stream(7)
        synopsis = SketchTree(
            SketchTreeConfig(s1=120, s2=7, max_pattern_edges=3,
                             n_virtual_streams=31, seed=4)
        )
        exact = ExactCounter(3)
        for tree in trees:
            synopsis.update(tree)
            exact.update(tree)
        for pattern, count in exact.counts.most_common(8):
            unordered_estimate = synopsis.estimate_unordered(pattern)
            unordered_actual = exact.count_unordered(pattern)
            assert abs(unordered_estimate - unordered_actual) <= max(
                12, 0.5 * unordered_actual
            )

    @given(st.integers(0, 10))
    @settings(max_examples=10, deadline=None)
    def test_expression_estimator_statistically_unbiased(self, stream_seed):
        """Mean of single-instance expression estimates over many sketch
        draws approaches the exact expression value."""
        trees = random_stream(stream_seed, n_trees=15)
        exact = ExactCounter(2)
        for tree in trees:
            exact.update(tree)
        patterns = [p for p, _ in exact.counts.most_common(2)]
        if len(patterns) < 2:
            return
        expression = Count(patterns[0]) - Count(patterns[1])
        actual = exact.evaluate_expression(expression)
        estimates = []
        for draw in range(60):
            synopsis = SketchTree(
                SketchTreeConfig(s1=1, s2=1, max_pattern_edges=2,
                                 n_virtual_streams=1, seed=1000 + draw)
            )
            synopsis.ingest_counts(exact.counts)
            estimates.append(synopsis.estimate_expression(expression))
        spread = np.std(estimates) / math.sqrt(len(estimates)) + 1e-9
        assert abs(np.mean(estimates) - actual) <= 5 * spread + 1


class TestFailureInjection:
    def test_corrupt_snapshot_rejected(self):
        synopsis = SketchTree(
            SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31)
        )
        blob = synopsis.to_bytes()
        with pytest.raises(Exception):
            SketchTree.from_bytes(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            SketchTree.from_bytes(b"not a pickle")

    def test_snapshot_of_wrong_structure_rejected(self):
        with pytest.raises(Exception):
            SketchTree.from_bytes(pickle.dumps({"something": "else"}))

    def test_library_errors_share_base_class(self):
        from repro import (
            ConfigError,
            HashingError,
            PatternError,
            QueryError,
            TreeError,
            XmlParseError,
        )

        for error in (ConfigError, HashingError, PatternError, QueryError,
                      TreeError, XmlParseError):
            assert issubclass(error, ReproError)

    @given(nested_trees(max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_update_never_corrupts_other_estimates(self, nested):
        """Adding then deleting any tree restores every counter exactly
        (AMS linearity end-to-end, including encoding)."""
        config = SketchTreeConfig(
            s1=10, s2=3, max_pattern_edges=3, n_virtual_streams=31, seed=1
        )
        synopsis = SketchTree(config)
        synopsis.update(from_nested(("Z", (("Q", ()),))))
        before = {
            r: m.counters.copy() for r, m in synopsis.streams.iter_sketches()
        }
        tree = from_nested(nested)
        synopsis.update(tree)
        synopsis.delete_tree(tree)
        for residue, matrix in synopsis.streams.iter_sketches():
            reference = before.get(residue)
            if reference is None:
                assert not matrix.counters.any()
            else:
                assert np.array_equal(matrix.counters, reference)
