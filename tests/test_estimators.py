"""Tests for the Theorem 1/2 sizing formulas and the self-join tracker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sketch import (
    SelfJoinTracker,
    s1_for_point_query,
    s1_for_sum_query,
    s1_for_sum_query_naive,
    s2_for_confidence,
    variance_bound_point,
    variance_bound_product2,
    variance_bound_sum,
)


class TestSizingFormulas:
    def test_s2_matches_paper_delta(self):
        # The paper computed s2 = 7 for delta = 0.1 via 2*lg(1/delta).
        assert s2_for_confidence(0.1) == 7

    def test_s2_monotone_in_confidence(self):
        assert s2_for_confidence(0.01) > s2_for_confidence(0.1)

    def test_s2_invalid_delta(self):
        with pytest.raises(ConfigError):
            s2_for_confidence(0.0)
        with pytest.raises(ConfigError):
            s2_for_confidence(1.0)

    def test_s1_point_formula(self):
        # s1 = 8 SJ / (eps^2 f^2), exactly.
        assert s1_for_point_query(1000, 10, 0.5) == 8 * 1000 // (0.25 * 100)

    def test_s1_point_decreases_with_frequency(self):
        assert s1_for_point_query(1e6, 100, 0.1) < s1_for_point_query(1e6, 10, 0.1)

    def test_s1_point_invalid_inputs(self):
        with pytest.raises(ConfigError):
            s1_for_point_query(-1, 10, 0.1)
        with pytest.raises(ConfigError):
            s1_for_point_query(10, 0, 0.1)
        with pytest.raises(ConfigError):
            s1_for_point_query(10, 1, 0)

    def test_s1_sum_single_pattern_reduces_to_point(self):
        assert s1_for_sum_query(1000, 10, 1, 0.5) == s1_for_point_query(1000, 10, 0.5)

    def test_theorem2_beats_naive(self):
        # The paper's point: the combined estimator needs a smaller s1
        # than per-pattern estimation for the same guarantee.
        self_join, eps, t = 1e6, 0.1, 5
        frequencies = [100, 120, 150, 200, 400]
        combined = s1_for_sum_query(self_join, sum(frequencies), t, eps)
        naive = s1_for_sum_query_naive(self_join, min(frequencies), t, eps)
        assert combined < naive

    def test_variance_bounds(self):
        assert variance_bound_point(123.0) == 123.0
        assert variance_bound_sum(100.0, 3) == 400.0
        assert variance_bound_sum(100.0, 1) == 0.0
        assert variance_bound_product2(10.0, 4) == (1 + 8) / 4 * 100.0

    def test_variance_bound_invalid(self):
        with pytest.raises(ConfigError):
            variance_bound_sum(10.0, 0)
        with pytest.raises(ConfigError):
            variance_bound_product2(10.0, 0)

    @given(st.integers(2, 50))
    def test_sum_bound_grows_linearly_in_t(self, t):
        assert variance_bound_sum(7.0, t) == 2 * (t - 1) * 7.0


class TestSelfJoinTracker:
    def test_incremental_matches_definition(self):
        tracker = SelfJoinTracker()
        tracker.add(1, 3)
        tracker.add(2, 4)
        tracker.add(1, 2)
        assert tracker.self_join_size == 5 * 5 + 4 * 4
        assert tracker.stream_length == 9
        assert tracker.n_distinct == 2

    def test_removal(self):
        tracker = SelfJoinTracker()
        tracker.add(1, 5)
        tracker.add(1, -5)
        assert tracker.self_join_size == 0
        assert tracker.n_distinct == 0

    def test_over_removal_rejected(self):
        tracker = SelfJoinTracker()
        tracker.add(1, 2)
        with pytest.raises(ConfigError):
            tracker.add(1, -3)

    def test_frequency_lookup(self):
        tracker = SelfJoinTracker()
        tracker.add_counts({7: 3, 9: 1})
        assert tracker.frequency(7) == 3
        assert tracker.frequency(8) == 0

    def test_top(self):
        tracker = SelfJoinTracker()
        tracker.add_counts({1: 5, 2: 50, 3: 20})
        assert tracker.top(2) == [(2, 50), (3, 20)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 10)),
            max_size=50,
        )
    )
    def test_matches_batch_computation(self, updates):
        tracker = SelfJoinTracker()
        table: dict[int, int] = {}
        for value, count in updates:
            tracker.add(value, count)
            table[value] = table.get(value, 0) + count
        assert tracker.self_join_size == sum(f * f for f in table.values())
        assert tracker.stream_length == sum(table.values())

    def test_deleting_top_values_reduces_self_join_most(self):
        # The Section 5.2 rationale: removing the heaviest values yields
        # the largest self-join reduction.
        tracker = SelfJoinTracker()
        tracker.add_counts({1: 100, 2: 10, 3: 10})
        before = tracker.self_join_size
        tracker.add(1, -100)
        after_heavy = tracker.self_join_size
        assert before - after_heavy == 100 * 100
        assert after_heavy < before - (10 * 10)
