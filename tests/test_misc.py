"""Coverage for small supporting pieces: scales, reprs, package surface."""

import pytest

from repro.experiments.scale import DEFAULT, PAPER, SMOKE, by_name


class TestScales:
    def test_by_name(self):
        assert by_name("smoke") is SMOKE
        assert by_name("default") is DEFAULT
        assert by_name("paper") is PAPER

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            by_name("galactic")

    def test_paper_scale_matches_table1(self):
        assert PAPER.treebank_trees == 28699
        assert PAPER.dblp_trees == 98061
        assert PAPER.treebank_k == 6
        assert PAPER.dblp_k == 4
        assert PAPER.n_virtual_streams == 229

    def test_paper_s1_sweeps(self):
        assert PAPER.treebank_s1 == (25, 50)
        assert PAPER.dblp_s1 == (50, 75)

    def test_scales_ordered_by_size(self):
        assert SMOKE.treebank_trees < DEFAULT.treebank_trees < PAPER.treebank_trees


class TestPublicSurface:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.core
        import repro.datasets
        import repro.enumtree
        import repro.hashing
        import repro.prufer
        import repro.query
        import repro.sketch
        import repro.stream
        import repro.trees
        import repro.workload

        for module in (
            repro.core, repro.datasets, repro.enumtree, repro.hashing,
            repro.prufer, repro.query, repro.sketch, repro.stream,
            repro.trees, repro.workload,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__


class TestReprs:
    """Reprs are part of the debugging surface; keep them informative."""

    def test_core_reprs(self):
        from repro import ExactCounter, SketchTree, SketchTreeConfig
        from repro.core import PatternEncoder, TopKTracker, VirtualStreams
        from repro.sketch import SketchMatrix

        config = SketchTreeConfig(s1=4, s2=2, n_virtual_streams=31)
        assert "SketchTree" in repr(SketchTree(config))
        assert "ExactCounter" in repr(ExactCounter(2))
        assert "PatternEncoder" in repr(PatternEncoder())
        assert "VirtualStreams" in repr(VirtualStreams(31, 4, 2))
        matrix = SketchMatrix(4, 2, seed=0)
        assert "SketchMatrix" in repr(matrix)
        assert "TopKTracker" in repr(TopKTracker(2, matrix))

    def test_substrate_reprs(self):
        from repro.datasets import (
            DblpGenerator,
            TreebankGenerator,
            XMarkGenerator,
            ZipfSampler,
        )
        from repro.hashing import LabelHasher, RabinFingerprint
        from repro.sketch import BchXiGenerator, CountSketch, XiGenerator
        from repro.trees import from_sexpr

        import numpy as np

        assert "TreebankGenerator" in repr(TreebankGenerator())
        assert "DblpGenerator" in repr(DblpGenerator())
        assert "XMarkGenerator" in repr(XMarkGenerator())
        assert "ZipfSampler" in repr(
            ZipfSampler(["a"], 1.0, np.random.default_rng(0))
        )
        assert "RabinFingerprint" in repr(RabinFingerprint(seed=0))
        assert "LabelHasher" in repr(LabelHasher())
        assert "XiGenerator" in repr(XiGenerator(4))
        assert "BchXiGenerator" in repr(BchXiGenerator(4))
        assert "CountSketch" in repr(CountSketch(8, 2))
        assert "LabeledTree" in repr(from_sexpr("(A (B))"))


class TestStreamEngineWithWindow:
    def test_window_as_consumer(self):
        from repro.core import SketchTreeConfig, WindowedSketchTree
        from repro.stream import StreamProcessor
        from repro.trees import from_sexpr

        window = WindowedSketchTree(
            SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31),
            window_trees=4,
            bucket_trees=2,
        )
        stats = StreamProcessor([window]).run(
            [from_sexpr("(A (B))")] * 10
        )
        assert stats.n_trees == 10
        assert 4 <= window.window_size_actual < 6
