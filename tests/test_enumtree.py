"""Tests for EnumTree: the paper's worked example, oracle equivalence."""

from collections import Counter

import pytest
from hypothesis import given, settings

from repro.enumtree import (
    count_patterns,
    count_patterns_by_size,
    enumerate_patterns,
    enumerate_patterns_naive,
)
from repro.enumtree.enumerate import compositions
from repro.errors import ConfigError
from repro.trees import from_nested, from_sexpr
from tests.strategies import labeled_trees

#: The paper's Figure 6(a) data tree: postorder numbers 1..7 with
#: 7 = root {children 5, 6}, 5 = {children 3, 4}, 6 = {child ... }.
#: From the worked example: P(7,3) uses children (7,5), (7,6); P(5,2)
#: returns {(5,3), (5,4)}; P(6,2) is empty, so node 6 has exactly one
#: child that is a leaf.  Reconstructed shape:
#:   7(5(3(1?),4), 6(x)) — the example needs node 5 with leaf children
#:   3 and 4, node 6 with a single leaf child, and node 3 a leaf too...
#: We rebuild the tree that makes every statement in the example true:
#:   root r with children a (two leaf children) and b (one leaf child).
FIG6_TREE = from_sexpr("(R (A (C) (D)) (B (E)))")


class TestCompositions:
    def test_enumerates_all(self):
        assert sorted(compositions(3, 2)) == [(0, 3), (1, 2), (2, 1), (3, 0)]

    def test_single_part(self):
        assert list(compositions(5, 1)) == [(5,)]

    def test_zero_total(self):
        assert list(compositions(0, 3)) == [(0, 0, 0)]

    def test_count_is_stars_and_bars(self):
        from math import comb

        assert len(list(compositions(6, 4))) == comb(6 + 3, 3)


class TestEnumerate:
    def test_figure6_worked_example(self):
        """Replays Section 5.1's walk-through on the Figure 6 shape.

        With at most k=3 edges, the patterns rooted at the root R are:
        one edge: R(A), R(B); two edges: R(A,B), R(A(C)), R(A(D)),
        R(B(E)); three edges: R(A(C,D)), R(A(C),B), R(A(D),B),
        R(A,B(E)), R(A(C)B)... enumerated precisely below.
        """
        patterns = enumerate_patterns(FIG6_TREE, 3)
        rooted_at_r = [p for p in patterns if p[0] == "R"]
        expected = {
            ("R", (("A", ()),)),
            ("R", (("B", ()),)),
            ("R", (("A", ()), ("B", ()))),
            ("R", (("A", (("C", ()),)),)),
            ("R", (("A", (("D", ()),)),)),
            ("R", (("B", (("E", ()),)),)),
            ("R", (("A", (("C", ()), ("D", ()))),)),
            ("R", (("A", (("C", ()),)), ("B", ()))),
            ("R", (("A", (("D", ()),)), ("B", ()))),
            ("R", (("A", ()), ("B", (("E", ()),)))),
            ("R", (("A", (("C", ()),)), ("B", (("E", ()),)))),  # 4 edges? no:
        }
        # The last entry has 4 edges and must NOT appear at k=3.
        four_edges = ("R", (("A", (("C", ()),)), ("B", (("E", ()),))))
        expected.discard(four_edges)
        assert set(rooted_at_r) == expected
        assert four_edges not in rooted_at_r

    def test_single_node_tree_has_no_patterns(self):
        assert enumerate_patterns(from_nested("A"), 3) == []

    def test_k_zero(self):
        assert enumerate_patterns(FIG6_TREE, 0) == []

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigError):
            enumerate_patterns(FIG6_TREE, -1)

    def test_chain_counts(self):
        # A chain of n nodes has, for each j, (n - j) patterns with j edges.
        chain = from_sexpr("(A (B (C (D (E)))))")
        by_size = count_patterns_by_size(chain, 3)
        assert by_size[1:] == [4, 3, 2]

    def test_star_counts(self):
        # A star with f leaves has C(f, j) patterns of j edges (root only).
        star = from_sexpr("(A (B) (C) (D) (E))")
        by_size = count_patterns_by_size(star, 4)
        assert by_size[1:] == [4, 6, 4, 1]

    def test_patterns_are_occurrences_with_multiplicity(self):
        # Two B leaves under A: the pattern A(B) occurs twice.
        tree = from_sexpr("(A (B) (B))")
        patterns = enumerate_patterns(tree, 1)
        assert Counter(patterns)[("A", (("B", ()),))] == 2

    def test_sibling_order_preserved(self):
        tree = from_sexpr("(A (B) (C))")
        patterns = enumerate_patterns(tree, 2)
        assert ("A", (("B", ()), ("C", ()))) in patterns
        assert ("A", (("C", ()), ("B", ()))) not in patterns

    def test_count_matches_enumeration_length(self):
        for k in range(5):
            assert count_patterns(FIG6_TREE, k) == len(
                enumerate_patterns(FIG6_TREE, k)
            )

    def test_deep_tree_no_recursion_error(self):
        nested = ("A", ())
        for _ in range(3000):
            nested = ("A", (nested,))
        tree = from_nested(nested)
        assert count_patterns(tree, 2) == 3000 + 2999

    @given(labeled_trees(max_nodes=9))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_oracle(self, tree):
        for k in (1, 2, 3):
            fast = Counter(enumerate_patterns(tree, k))
            naive = Counter(enumerate_patterns_naive(tree, k))
            assert fast == naive

    @given(labeled_trees(max_nodes=10))
    @settings(max_examples=60, deadline=None)
    def test_count_equals_enumeration(self, tree):
        assert count_patterns(tree, 3) == len(enumerate_patterns(tree, 3))

    @given(labeled_trees(max_nodes=10))
    @settings(max_examples=40, deadline=None)
    def test_every_pattern_within_size_bound(self, tree):
        from repro.query.pattern import pattern_edges

        for pattern in enumerate_patterns(tree, 3):
            assert 1 <= pattern_edges(pattern) <= 3

    @given(labeled_trees(max_nodes=10))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_k(self, tree):
        smaller = Counter(enumerate_patterns(tree, 2))
        larger = Counter(enumerate_patterns(tree, 3))
        assert all(larger[p] >= c for p, c in smaller.items())
