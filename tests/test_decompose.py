"""Tests for oversized-pattern sub-pattern bounds."""

import pytest

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.errors import QueryError
from repro.query import estimate_upper_bound, subpatterns
from repro.query.pattern import pattern_edges, pattern_from_sexpr
from repro.trees import from_sexpr


class TestSubpatterns:
    def test_maximal_only(self):
        pattern = pattern_from_sexpr("(A (B (C)) (D))")  # 3 edges
        out = subpatterns(pattern, 2)
        assert out
        assert all(pattern_edges(p) == 2 for p in out)

    def test_includes_smaller_when_requested(self):
        pattern = pattern_from_sexpr("(A (B) (C))")
        out = subpatterns(pattern, 2, only_maximal=False)
        assert ("A", (("B", ()),)) in out
        assert ("A", (("B", ()), ("C", ()))) in out

    def test_within_k_pattern_is_its_own_subpattern(self):
        pattern = pattern_from_sexpr("(A (B))")
        assert subpatterns(pattern, 4) == [pattern]

    def test_distinct(self):
        pattern = pattern_from_sexpr("(A (B) (B))")
        out = subpatterns(pattern, 1)
        assert len(out) == len(set(out))

    def test_single_node_rejected(self):
        with pytest.raises(QueryError):
            subpatterns(("A", ()), 2)

    def test_soundness_of_counting_inequality(self):
        """Every sub-pattern's exact count dominates the pattern's count —
        the inequality the bound relies on."""
        trees = [
            from_sexpr("(A (B (C)) (D))"),
            from_sexpr("(A (B (C)))"),
            from_sexpr("(A (B) (D))"),
            from_sexpr("(X (A (B (C)) (D)))"),
        ]
        exact_small = ExactCounter(2).ingest(trees)
        exact_large = ExactCounter(3).ingest(trees)
        pattern = pattern_from_sexpr("(A (B (C)) (D))")
        full_count = exact_large.count_ordered(pattern)
        for sub in subpatterns(pattern, 2):
            assert exact_small.count_ordered(sub) >= full_count


class TestUpperBound:
    def build(self, stream):
        config = SketchTreeConfig(
            s1=80, s2=7, max_pattern_edges=2, n_virtual_streams=31, seed=3
        )
        synopsis = SketchTree(config)
        for text in stream:
            synopsis.update(from_sexpr(text))
        return synopsis

    def test_bounds_oversized_pattern(self):
        # Q = A(B(C), D) has 3 edges; the synopsis only sketches 2.
        stream = ["(A (B (C)) (D))"] * 5 + ["(A (B) (D))"] * 20
        synopsis = self.build(stream)
        pattern = pattern_from_sexpr("(A (B (C)) (D))")
        bound = estimate_upper_bound(synopsis, pattern)
        # True count is 5; the bound must (approximately) dominate it and
        # beat the trivially loose 25 from A(B,D) alone thanks to the
        # rarer B(C) sub-pattern.
        assert bound >= 5 - 3
        assert bound <= 5 + 5

    def test_zero_when_subpattern_absent(self):
        synopsis = self.build(["(A (B) (D))"] * 10)
        pattern = pattern_from_sexpr("(A (B (C)) (D))")  # B(C) never occurs
        assert estimate_upper_bound(synopsis, pattern) <= 3

    def test_within_k_reduces_to_estimate(self):
        synopsis = self.build(["(A (B) (C))"] * 7)
        pattern = pattern_from_sexpr("(A (B) (C))")
        assert estimate_upper_bound(synopsis, pattern) == pytest.approx(
            max(0.0, synopsis.estimate_ordered(pattern))
        )
