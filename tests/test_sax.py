"""Tests for XML event streaming and SAX-style pattern enumeration."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings

from repro import SketchTree, SketchTreeConfig
from repro.enumtree import enumerate_patterns
from repro.errors import ConfigError, TreeError, XmlParseError
from repro.stream import SaxPatternEnumerator, iter_xml_patterns, sketch_xml_stream
from repro.trees import iter_events, parse_forest, to_xml
from repro.trees.node import TreeNode
from repro.trees.tree import LabeledTree
from tests.strategies import labeled_trees

SAMPLE = '<a x="1"><b>t</b><c/><b><d/></b></a><e><f/>txt</e>'


def tree_from_events(events):
    """Reference builder: fold events into TreeNode structures."""
    forest, stack = [], []
    for event in events:
        if event[0] == "open":
            node = TreeNode(event[1])
            if stack:
                stack[-1].add_child(node)
            stack.append(node)
        elif event[0] == "text":
            stack[-1].add(event[1])
        else:
            node = stack.pop()
            if not stack:
                forest.append(LabeledTree(node))
    return forest


class TestIterEvents:
    def test_events_rebuild_parse_forest(self):
        assert tree_from_events(iter_events(SAMPLE)) == parse_forest(SAMPLE)

    def test_attributes_dropped_when_disabled(self):
        events = list(iter_events('<a x="1"/>', keep_attributes=False))
        assert events == [("open", "a"), ("close",)]

    def test_text_and_cdata(self):
        events = list(iter_events("<a>x<![CDATA[y]]></a>"))
        assert events == [("open", "a"), ("text", "xy"), ("close",)]

    def test_balanced(self):
        events = list(iter_events(SAMPLE))
        assert sum(1 for e in events if e[0] == "open") == sum(
            1 for e in events if e[0] == "close"
        )

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            list(iter_events("<a><b></a>"))
        with pytest.raises(XmlParseError):
            list(iter_events("<a>"))

    @given(labeled_trees(max_nodes=10))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_via_serialiser(self, tree):
        text = to_xml(tree)
        assert tree_from_events(iter_events(text)) == parse_forest(text)


class TestSaxEnumerator:
    def test_matches_batch_enumeration(self):
        want = Counter()
        for tree in parse_forest(SAMPLE):
            want.update(enumerate_patterns(tree, 3))
        assert Counter(iter_xml_patterns(SAMPLE, 3)) == want

    def test_emits_eagerly_on_close(self):
        seen = []
        enumerator = SaxPatternEnumerator(2, seen.append)
        enumerator.open("a")
        enumerator.open("b")
        enumerator.open("c")
        enumerator.close()  # c closes: no patterns (leaf)
        assert seen == []
        enumerator.close()  # b closes: pattern b(c) emitted now
        assert ("b", (("c", ()),)) in seen

    def test_frontier_memory_is_path_local(self):
        # A long chain keeps at most one completed child table per level
        # of the open path; after closing everything the frontier is 0.
        enumerator = SaxPatternEnumerator(2, lambda p: None)
        for _ in range(50):
            enumerator.open("x")
        assert enumerator.frontier_tables() == 0
        for _ in range(50):
            enumerator.close()
        assert enumerator.depth == 0

    def test_unbalanced_close_raises(self):
        enumerator = SaxPatternEnumerator(2, lambda p: None)
        with pytest.raises(TreeError):
            enumerator.close()

    def test_unknown_event_kind(self):
        enumerator = SaxPatternEnumerator(2, lambda p: None)
        with pytest.raises(TreeError):
            enumerator.feed(("comment", "hi"))

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            SaxPatternEnumerator(0, lambda p: None)

    def test_unclosed_stream_detected(self):
        with pytest.raises(XmlParseError):
            list(iter_xml_patterns("<a><b>", 2))

    @given(labeled_trees(max_nodes=9))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, tree):
        text = to_xml(tree)
        want = Counter(enumerate_patterns(parse_forest(text)[0], 3))
        assert Counter(iter_xml_patterns(text, 3)) == want


class TestSketchXmlStream:
    CONFIG = SketchTreeConfig(
        s1=40, s2=5, max_pattern_edges=3, n_virtual_streams=31, seed=3
    )

    def test_identical_sketch_state(self):
        via_trees = SketchTree(self.CONFIG).ingest(parse_forest(SAMPLE))
        via_sax = sketch_xml_stream(SketchTree(self.CONFIG), SAMPLE)
        for residue, matrix in via_trees.streams.iter_sketches():
            other = via_sax.streams.sketch_if_allocated(residue)
            assert other is not None
            assert np.array_equal(matrix.counters, other.counters)
        assert via_sax.n_trees == via_trees.n_trees
        assert via_sax.n_values == via_trees.n_values

    def test_with_topk(self):
        config = SketchTreeConfig(
            s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
            topk_size=2, seed=5,
        )
        synopsis = sketch_xml_stream(SketchTree(config), "<h><x/></h>" * 100)
        assert synopsis.estimate_ordered("(h (x))") == pytest.approx(100, abs=15)

    def test_returns_synopsis(self):
        synopsis = SketchTree(self.CONFIG)
        assert sketch_xml_stream(synopsis, "<a><b/></a>") is synopsis
