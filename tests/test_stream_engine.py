"""Tests for the stream-processing engine."""

import pytest

from repro.core import ExactCounter
from repro.errors import ConfigError
from repro.stream import StreamProcessor
from repro.trees import from_sexpr


def trees(n=6):
    return [from_sexpr("(A (B) (C))") for _ in range(n)]


class TestStreamProcessor:
    def test_feeds_every_consumer(self):
        a, b = ExactCounter(2), ExactCounter(2)
        stats = StreamProcessor([a, b]).run(trees(4))
        assert a.n_trees == b.n_trees == 4
        assert stats.n_trees == 4
        assert stats.total_nodes == 12

    def test_elapsed_positive(self):
        stats = StreamProcessor([ExactCounter(2)]).run(trees())
        assert stats.elapsed_seconds > 0
        assert stats.trees_per_second > 0

    def test_empty_run_throughput_is_zero(self):
        # An empty or unmeasured run used to report inf trees/second.
        stats = StreamProcessor([ExactCounter(2)]).run([])
        assert stats.n_trees == 0
        assert stats.trees_per_second == 0.0

    def test_zero_elapsed_throughput_is_zero(self):
        from repro.stream.engine import ProcessingStats

        assert ProcessingStats().trees_per_second == 0.0
        assert ProcessingStats(n_trees=5, elapsed_seconds=0.0).trees_per_second == 0.0

    def test_negative_snapshot_every_rejected(self):
        with pytest.raises(ConfigError):
            StreamProcessor([ExactCounter(2)], snapshot_every=-1)

    def test_snapshot_now_without_manager_rejected(self):
        with pytest.raises(ConfigError):
            StreamProcessor([ExactCounter(2)]).snapshot_now()

    def test_resume_without_manager_rejected(self):
        with pytest.raises(ConfigError):
            StreamProcessor([ExactCounter(2)]).resume(trees())

    def test_checkpoints_fire(self):
        seen = []
        processor = StreamProcessor(
            [ExactCounter(2)],
            checkpoint_every=2,
            on_checkpoint=lambda n: seen.append(n) or n,
        )
        stats = processor.run(trees(6))
        assert seen == [2, 4, 6]
        assert stats.checkpoint_results == [2, 4, 6]

    def test_checkpoint_queries_see_prefix(self):
        # The Figure 2 model: a query at time t sees exactly the prefix.
        exact = ExactCounter(2)
        pattern = ("A", (("B", ()),))
        processor = StreamProcessor(
            [exact],
            checkpoint_every=3,
            on_checkpoint=lambda n: exact.count_ordered(pattern),
        )
        stats = processor.run(trees(6))
        assert stats.checkpoint_results == [3, 6]

    def test_requires_consumer(self):
        with pytest.raises(ConfigError):
            StreamProcessor([])

    def test_requires_update_method(self):
        with pytest.raises(ConfigError):
            StreamProcessor([object()])

    def test_negative_checkpoint_rejected(self):
        with pytest.raises(ConfigError):
            StreamProcessor([ExactCounter(2)], checkpoint_every=-1)

    def test_works_with_sketchtree(self):
        from repro import SketchTree, SketchTreeConfig

        synopsis = SketchTree(
            SketchTreeConfig(s1=20, s2=3, max_pattern_edges=2,
                             n_virtual_streams=31, seed=0)
        )
        StreamProcessor([synopsis]).run(trees(5))
        assert synopsis.n_trees == 5


class TestResumeEventAlignment:
    """Resumed runs fire events at *absolute* stream positions.

    Before the fix, `resume()` reset the tree counter to zero, so a run
    restored from a checkpoint holding ``r`` trees fired its first
    checkpoint after ``checkpoint_every`` *additional* trees — at
    absolute position ``r + every`` instead of the next multiple of
    ``every``.  Any checkpoint written off-schedule (``snapshot_now()``,
    e.g. the CLI's end-of-run save) made every subsequent resumed event
    misaligned.
    """

    def config(self):
        from repro import SketchTreeConfig

        return SketchTreeConfig(
            s1=12, s2=3, max_pattern_edges=2, n_virtual_streams=13, seed=5
        )

    def test_stream_position_offsets_by_resumed_from(self):
        from repro.stream.engine import ProcessingStats

        assert ProcessingStats().stream_position == 0
        assert ProcessingStats(n_trees=5, resumed_from=7).stream_position == 12

    def test_checkpoints_fire_at_absolute_positions(self, tmp_path):
        from repro import SketchTree
        from repro.core.snapshot import CheckpointManager

        manager = CheckpointManager(tmp_path)
        first = StreamProcessor([SketchTree(self.config())], checkpoints=manager)
        first.run(trees(7))
        first.snapshot_now()  # off-schedule checkpoint at 7 trees

        seen = []
        resumed = StreamProcessor(
            [SketchTree(self.config())],
            checkpoint_every=5,
            on_checkpoint=lambda n: seen.append(n) or n,
            checkpoints=manager,
        )
        stats = resumed.resume(trees(20))
        assert stats.resumed_from == 7
        assert stats.n_trees == 13
        assert stats.stream_position == 20
        # Absolute multiples of 5 — not 12/17, the pre-fix offsets.
        assert seen == [10, 15, 20]
        assert stats.checkpoint_results == [10, 15, 20]

    def test_resumed_snapshots_fire_at_absolute_positions(self, tmp_path):
        from repro import SketchTree
        from repro.core.snapshot import CheckpointManager

        manager = CheckpointManager(tmp_path, keep_last=10)
        first = StreamProcessor([SketchTree(self.config())], checkpoints=manager)
        first.run(trees(7))
        first.snapshot_now()

        resumed = StreamProcessor(
            [SketchTree(self.config())],
            snapshot_every=6,
            checkpoints=manager,
        )
        stats = resumed.resume(trees(24))
        # Snapshot filenames encode the synopsis tree count: 12, 18, 24.
        names = [p.name for p in stats.snapshot_paths]
        assert names == [
            "checkpoint-000000000012.sktsnap",
            "checkpoint-000000000018.sktsnap",
            "checkpoint-000000000024.sktsnap",
        ]

    def test_resumed_batches_respect_absolute_boundaries(self, tmp_path):
        from repro import SketchTree
        from repro.core.snapshot import CheckpointManager

        manager = CheckpointManager(tmp_path)
        first = StreamProcessor([SketchTree(self.config())], checkpoints=manager)
        first.run(trees(7))
        first.snapshot_now()

        seen = []
        resumed = StreamProcessor(
            [SketchTree(self.config())],
            checkpoint_every=5,
            on_checkpoint=lambda n: seen.append(n),
            batch_trees=4,
            checkpoints=manager,
        )
        stats = resumed.resume(trees(20))
        assert stats.resumed_from == 7
        # With batching the flush limit is also expressed in absolute
        # coordinates: no micro-batch straddles a multiple of 5.
        assert seen == [10, 15, 20]
