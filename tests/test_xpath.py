"""Tests for the XPath-subset query front end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.errors import PatternError, QueryError
from repro.query import parse_xpath
from repro.trees import from_sexpr


class TestParsing:
    def test_single_name(self):
        query = parse_xpath("A")
        assert query.label == "A"
        assert query.children == ()
        assert query.is_plain()

    def test_child_chain(self):
        query = parse_xpath("A/B/C")
        assert query.label == "A"
        assert query.children[0].label == "B"
        assert query.children[0].children[0].label == "C"

    def test_descendant_axis(self):
        query = parse_xpath("A//C")
        assert query.children[0].edge == "descendant"
        assert not query.is_plain()

    def test_paper_count_query_shape(self):
        # The paper's //A[B]/C: A with children B (predicate) and C.
        query = parse_xpath("//A[B]/C")
        assert query.label == "A"
        assert [c.label for c in query.children] == ["B", "C"]
        assert all(c.edge == "child" for c in query.children)

    def test_nested_predicates(self):
        query = parse_xpath("A[B/C][D]")
        assert [c.label for c in query.children] == ["B", "D"]
        assert query.children[0].children[0].label == "C"

    def test_predicate_with_descendant(self):
        query = parse_xpath("A[.//B]".replace(".//", "//"))  # A[//B]
        assert query.children[0].edge == "descendant"

    def test_wildcard(self):
        query = parse_xpath("A/*")
        assert query.children[0].label == "*"
        assert not query.is_plain()

    def test_or_alternatives(self):
        query = parse_xpath("VP/VBD|VBP|VBZ")
        assert query.children[0].label == "VBD|VBP|VBZ"

    def test_leading_slash_accepted(self):
        assert parse_xpath("/A/B").label == "A"
        assert parse_xpath("//A/B").label == "A"

    def test_whitespace_tolerated(self):
        query = parse_xpath(" A [ B ] / C ")
        assert [c.label for c in query.children] == ["B", "C"]

    @pytest.mark.parametrize(
        "bad",
        ["", "/", "A[B", "A]", "A//", "A[/B]", "A B", "[B]"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PatternError):
            parse_xpath(bad)


def nested_queries():
    """Random QueryNodes with child/descendant edges and wildcards."""
    from hypothesis import strategies as st

    from repro.query import QueryNode

    label = st.sampled_from(["A", "B", "C", "*"])
    edge = st.sampled_from(["child", "descendant"])

    def extend(children):
        return st.builds(
            lambda lab, kids: ("node", lab, tuple(kids)),
            label,
            st.lists(children, max_size=3),
        )

    base = st.builds(lambda lab: ("node", lab, ()), label)
    raw = st.recursive(base, extend, max_leaves=6)

    def to_query(node, is_root, rng_edges):
        _, lab, kids = node
        kid_queries = tuple(
            to_query(kid, False, rng_edges) for kid in kids
        )
        kind = "child" if is_root else rng_edges.draw_edge()
        return QueryNode(lab, kid_queries, kind)

    class _EdgeDraw:
        def __init__(self, values):
            self.values = list(values)

        def draw_edge(self):
            return self.values.pop() if self.values else "child"

    return st.builds(
        lambda node, edges: to_query(node, True, _EdgeDraw(edges)),
        raw,
        st.lists(edge, max_size=24),
    )



class TestRendering:
    def test_simple_roundtrips(self):
        for text in ["A", "A/B", "A//B", "A[B]/C", "A[B/C][D]/E", "A/*",
                     "A[//B]/C", "VP[VBD|VBP]/NP"]:
            query = parse_xpath(text)
            assert parse_xpath(query.to_xpath()) == query

    def test_render_shapes(self):
        from repro.query import QueryNode

        query = QueryNode.from_sexpr("(A (B) (C))")
        assert query.to_xpath() == "A[B]/C"
        query = QueryNode.from_sexpr("(A (//B))")
        assert query.to_xpath() == "A//B"

    @given(nested_queries())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, query):
        assert parse_xpath(query.to_xpath()) == query


class TestEstimateXpath:
    def build(self, topology=None, **config_kwargs):
        config = SketchTreeConfig(
            s1=60, s2=7, max_pattern_edges=3, n_virtual_streams=31,
            seed=8, **config_kwargs,
        )
        synopsis = SketchTree(config)
        exact = ExactCounter(3)
        stream = topology or (
            ["(A (B) (C))"] * 5 + ["(A (C))"] * 3 + ["(A (B (C)))"] * 2
        )
        for text in stream:
            tree = from_sexpr(text)
            synopsis.update(tree)
            exact.update(tree)
        return synopsis, exact

    def test_plain_path(self):
        synopsis, exact = self.build()
        estimate = synopsis.estimate_xpath("A[B]/C")
        actual = exact.count_ordered(("A", (("B", ()), ("C", ()))))
        assert estimate == pytest.approx(actual, abs=4)

    def test_or_labels(self):
        synopsis, exact = self.build()
        estimate = synopsis.estimate_xpath("A/B|C")
        actual = exact.count_sum(
            [("A", (("B", ()),)), ("A", (("C", ()),))]
        )
        assert estimate == pytest.approx(actual, abs=5)

    def test_descendant_needs_summary(self):
        synopsis, _ = self.build()
        with pytest.raises(QueryError):
            synopsis.estimate_xpath("A//C")

    def test_descendant_with_summary(self):
        synopsis, exact = self.build(maintain_summary=True)
        estimate = synopsis.estimate_xpath("A//C")
        actual = exact.count_sum(
            [("A", (("C", ()),)), ("A", (("B", (("C", ()),)),))]
        )
        assert estimate == pytest.approx(actual, abs=5)

    def test_wildcard_with_summary(self):
        synopsis, exact = self.build(maintain_summary=True)
        estimate = synopsis.estimate_xpath("A/*")
        actual = exact.count_sum(
            [("A", (("B", ()),)), ("A", (("C", ()),))]
        )
        assert estimate == pytest.approx(actual, abs=5)

    def test_semantics_note_occurrences_not_targets(self):
        """The paper's Figure 1 discussion: pattern-occurrence counting
        differs from XPath target counting."""
        synopsis, exact = self.build(
            topology=["(A (B) (C) (C))"] * 4  # 2 occurrences per tree
        )
        estimate = synopsis.estimate_xpath("A[B]/C")
        # Occurrence semantics: 2 per tree; XPath //A[B]/C would count
        # target C nodes (also 2 here), but with repeated B's they differ;
        # assert the occurrence number explicitly.
        assert estimate == pytest.approx(8, abs=4)
