"""Tests for the synthetic dataset generators and Zipf sampling."""

import numpy as np
import pytest

from repro.datasets import (
    DblpGenerator,
    TreebankGenerator,
    XMarkGenerator,
    ZipfSampler,
)
from repro.errors import ConfigError
from repro.trees.stats import ForestStatistics


class TestZipfSampler:
    def test_deterministic_given_rng(self):
        a = ZipfSampler(["x", "y", "z"], 1.0, np.random.default_rng(1))
        b = ZipfSampler(["x", "y", "z"], 1.0, np.random.default_rng(1))
        assert a.sample_many(20) == b.sample_many(20)

    def test_skew_concentrates_head(self):
        vocabulary = [f"w{i}" for i in range(50)]
        rng = np.random.default_rng(2)
        skewed = ZipfSampler(vocabulary, 1.5, rng)
        draws = skewed.sample_many(2000)
        head_share = draws.count("w0") / len(draws)
        assert head_share > 0.2

    def test_zero_skew_uniform(self):
        vocabulary = [f"w{i}" for i in range(10)]
        sampler = ZipfSampler(vocabulary, 0.0, np.random.default_rng(3))
        draws = sampler.sample_many(5000)
        counts = [draws.count(w) for w in vocabulary]
        assert max(counts) < 2 * min(counts)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigError):
            ZipfSampler([], 1.0, rng)
        with pytest.raises(ConfigError):
            ZipfSampler(["a"], -1.0, rng)


class TestTreebankGenerator:
    def test_deterministic(self):
        a = list(TreebankGenerator(seed=4).generate(20))
        b = list(TreebankGenerator(seed=4).generate(20))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(TreebankGenerator(seed=1).generate(20))
        b = list(TreebankGenerator(seed=2).generate(20))
        assert a != b

    def test_shape_is_deep_and_narrow(self):
        """The paper's TREEBANK: 'narrow and deep with recursive element
        names'."""
        stats = ForestStatistics.of(TreebankGenerator(seed=5).generate(200))
        assert stats.mean_depth >= 3.5
        assert stats.max_fanout <= 4
        assert stats.max_depth >= 8

    def test_roots_are_sentences(self):
        for tree in TreebankGenerator(seed=6).generate(10):
            assert tree.label_of(tree.root) == "S"

    def test_recursive_labels_present(self):
        # NP inside NP (or S inside SBAR): recursion is the hallmark.
        found = False
        for tree in TreebankGenerator(seed=7).generate(100):
            for num in tree.iter_postorder():
                if tree.label_of(num) == "NP" and "NP" in tree.label_path(num)[:-1]:
                    found = True
        assert found

    def test_depth_bounded(self):
        generator = TreebankGenerator(seed=8, max_depth=6)
        stats = ForestStatistics.of(generator.generate(100))
        assert stats.max_depth <= 6 + 4  # fallback slack

    def test_invalid_depth(self):
        with pytest.raises(ConfigError):
            TreebankGenerator(max_depth=1)


class TestDblpGenerator:
    def test_deterministic(self):
        a = list(DblpGenerator(seed=4).generate(20))
        b = list(DblpGenerator(seed=4).generate(20))
        assert a == b

    def test_shape_is_shallow_and_bushy(self):
        """The paper's DBLP: 'shallow and bushy'."""
        stats = ForestStatistics.of(DblpGenerator(seed=5).generate(200))
        assert stats.max_depth <= 3
        assert stats.mean_fanout >= 4

    def test_record_structure(self):
        for tree in DblpGenerator(seed=6).generate(20):
            root_label = tree.label_of(tree.root)
            assert root_label in ("article", "inproceedings", "book",
                                  "phdthesis", "www")
            field_labels = [tree.label_of(c) for c in tree.children_of(tree.root)]
            assert "title" in field_labels
            assert "year" in field_labels
            assert "author" in field_labels

    def test_values_are_leaves(self):
        tree = next(iter(DblpGenerator(seed=7).generate(1)))
        for field in tree.children_of(tree.root):
            for value in tree.children_of(field):
                assert tree.is_leaf(value)

    def test_pattern_distribution_more_skewed_than_treebank(self):
        """Section 7.7: 'the distribution of tree patterns in DBLP had
        higher degree of skew than the tree patterns in TREEBANK'.

        Measured, at each dataset's paper ``k``, as the *fraction of
        distinct patterns* needed to cover half of all occurrences — the
        quantity that determines how small a top-k suffices (Figures
        10(c,d)'s "drastic improvement" at top-k = 50): smaller = more
        skewed.
        """
        from repro.core import ExactCounter

        dblp = ExactCounter(4).ingest(DblpGenerator(seed=8).generate(300))
        treebank = ExactCounter(6).ingest(TreebankGenerator(seed=8).generate(300))

        def cover_half_fraction(exact):
            accumulated, needed = 0, 0
            for _, count in exact.counts.most_common():
                accumulated += count
                needed += 1
                if accumulated >= exact.n_values / 2:
                    break
            return needed / exact.n_distinct_patterns

        assert cover_half_fraction(dblp) < cover_half_fraction(treebank)

    def test_vocabulary_validation(self):
        with pytest.raises(ConfigError):
            DblpGenerator(n_authors=0)

    def test_generated_trees_xml_roundtrip(self):
        from repro.trees import parse_xml, to_xml

        for tree in DblpGenerator(seed=9).generate(10):
            assert parse_xml(to_xml(tree)) == tree
        for tree in TreebankGenerator(seed=9).generate(10):
            assert parse_xml(to_xml(tree)) == tree
        for tree in XMarkGenerator(seed=9).generate(10):
            assert parse_xml(to_xml(tree)) == tree


class TestXMarkGenerator:
    def test_deterministic(self):
        a = list(XMarkGenerator(seed=4).generate(15))
        b = list(XMarkGenerator(seed=4).generate(15))
        assert a == b

    def test_species_mix(self):
        roots = {
            tree.label_of(tree.root)
            for tree in XMarkGenerator(seed=5).generate(100)
        }
        assert roots == {"item", "person", "open_auction"}

    def test_shape_between_treebank_and_dblp(self):
        from repro.trees.stats import ForestStatistics

        xmark = ForestStatistics.of(XMarkGenerator(seed=6).generate(200))
        treebank = ForestStatistics.of(TreebankGenerator(seed=6).generate(200))
        dblp = ForestStatistics.of(DblpGenerator(seed=6).generate(200))
        assert dblp.mean_depth < xmark.mean_depth < treebank.mean_depth
        assert treebank.mean_fanout < xmark.mean_fanout < dblp.mean_fanout

    def test_recursive_descriptions_present(self):
        found = False
        for tree in XMarkGenerator(seed=7).generate(200):
            for num in tree.iter_postorder():
                if (
                    tree.label_of(num) == "parlist"
                    and "parlist" in tree.label_path(num)[:-1]
                ):
                    found = True
        assert found  # the parlist-in-parlist recursion, XMark's hallmark

    def test_description_depth_bounded(self):
        generator = XMarkGenerator(seed=8, max_description_depth=2)
        for tree in generator.generate(100):
            for num in tree.iter_postorder():
                if tree.label_of(num) == "parlist":
                    nesting = tree.label_path(num).count("parlist")
                    assert nesting <= 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            XMarkGenerator(n_categories=0)
        with pytest.raises(ConfigError):
            XMarkGenerator(max_description_depth=0)
