"""Executes every Python block in docs/walkthrough.md.

The walkthrough replays the paper's worked examples; this test keeps the
document honest — each snippet must run, and the inline ``# -> value``
assertions are checked where they annotate a bare expression.
"""

import re
from pathlib import Path

import pytest

WALKTHROUGH = Path(__file__).parent.parent / "docs" / "walkthrough.md"


def extract_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.fixture(scope="module")
def blocks():
    assert WALKTHROUGH.exists(), "docs/walkthrough.md is missing"
    found = extract_blocks(WALKTHROUGH.read_text())
    assert len(found) >= 6
    return found


def test_all_blocks_execute_in_sequence(blocks):
    """Blocks share one namespace (like a REPL session) and must all run."""
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, str(WALKTHROUGH), "exec"), namespace)


def test_figure1_numbers(blocks):
    namespace: dict = {}
    exec(blocks[0], namespace)
    assert namespace["count_ordered_in_stream"](
        [namespace["T1"], namespace["T2"], namespace["T3"]], namespace["Q"]
    ) == 3
    assert namespace["count_unordered_in_stream"](
        [namespace["T1"], namespace["T2"], namespace["T3"]], namespace["Q"]
    ) == 5


def test_sketch_agrees_with_figure1(blocks):
    namespace: dict = {}
    exec(blocks[0], namespace)
    exec(blocks[1], namespace)
    st = namespace["st"]
    assert round(st.estimate_ordered(namespace["Q"])) == 3
    assert round(st.estimate_unordered(namespace["Q"])) == 5


def test_example1_sequences(blocks):
    namespace: dict = {}
    exec(blocks[0], namespace)
    exec(blocks[2], namespace)
    assert namespace["s1"].lps == ("Z", "Y", "X")
    assert namespace["s1"].nps == (2, 3, 4)
    assert namespace["s2"].lps == ("Y", "X", "Z", "X")
    assert namespace["s2"].nps == (2, 5, 4, 5)


def test_example3_exact_value(blocks):
    namespace: dict = {}
    exec(blocks[0], namespace)
    exec(blocks[1], namespace)
    exec(blocks[5], namespace)
    assert namespace["exact"].evaluate_expression(namespace["expr"]) == 38
