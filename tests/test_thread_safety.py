"""Threaded hammer tests for the serving-tier concurrency contracts.

These pin the runtime side of the SKL2xx analysis (docs/concurrency.md):

* sharded ingest — one thread per private :class:`SketchTree` shard with
  concurrent ``estimate_*`` readers — then :meth:`SketchTree.merge`
  produces counters bit-identical to a serial run (AMS linearity);
* the locked :class:`PatternEncoder` stays consistent under concurrent
  ``encode_batch`` calls and its LRU accounting stays exact;
* :class:`Counter`/:class:`Histogram` totals are exact under contention
  (the ``+= 1`` the analysis flags as SKL202 when unguarded);
* :class:`TopKTracker` and :class:`CheckpointManager` survive a
  writer/reader hammer without exceptions or invariant violations.

``sys.setswitchinterval`` is dropped to force frequent preemption, which
makes the pre-lock races (lost updates, LRU corruption) reproduce
reliably enough that these tests guarded the locks' introduction.
"""

import sys
import threading

import numpy as np
import pytest

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.core import PatternEncoder
from repro.core.snapshot import CheckpointManager
from repro.core.topk import TopKTracker
from repro.obs.registry import MetricsRegistry
from repro.sketch.ams import SketchMatrix
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=3, n_virtual_streams=31, seed=7
)

STREAM = [
    "(A (B) (C))",
    "(A (C) (B))",
    "(A (B (C)))",
    "(A (B) (C))",
    "(X (A (B)))",
    "(A (B) (B))",
    "(A (B (C) (B)))",
    "(X (A (C)))",
]


@pytest.fixture(autouse=True)
def frequent_preemption():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    yield
    sys.setswitchinterval(previous)


def run_threads(targets):
    """Run thunks concurrently; re-raise the first exception, if any."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as error:  # noqa: BLE001 - rethrown below
                errors.append(error)

        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestShardedIngest:
    N_SHARDS = 4
    REPEAT = 25

    def _chunks(self):
        trees = [from_sexpr(text) for text in STREAM * self.REPEAT]
        return [trees[i :: self.N_SHARDS] for i in range(self.N_SHARDS)]

    def test_shard_merge_is_bit_identical_to_serial(self):
        chunks = self._chunks()
        shards = [SketchTree(CONFIG) for _ in chunks]
        queries = ["(A (B))", "(A (B) (C))", "(X (A))"]
        estimates = []

        def ingest(shard, trees):
            def run():
                for tree in trees:
                    shard.update(tree)

            return run

        def read():
            # Racy-but-benign reads against shard 0 while it ingests:
            # estimates must come back finite, never raise.
            for _ in range(50):
                for query in queries:
                    estimates.append(shards[0].estimate_ordered(query))

        run_threads(
            [ingest(shard, trees) for shard, trees in zip(shards, chunks)]
            + [read, read]
        )
        assert all(np.isfinite(estimates))

        merged = shards[0]
        for shard in shards[1:]:  # shards are quiesced: threads joined
            merged = merged.merge(shard)

        serial = SketchTree(CONFIG)
        for chunk in self._chunks():
            for tree in chunk:
                serial.update(tree)

        assert merged.n_trees == serial.n_trees
        assert merged.n_values == serial.n_values
        for residue, matrix in serial.streams.iter_sketches():
            other = merged.streams.sketch_if_allocated(residue)
            assert other is not None
            assert np.array_equal(matrix.counters, other.counters)

    def test_merged_estimates_match_serial(self):
        chunks = self._chunks()
        shards = [SketchTree(CONFIG) for _ in chunks]
        run_threads(
            [
                (lambda s, ts: lambda: [s.update(t) for t in ts])(shard, trees)
                for shard, trees in zip(shards, chunks)
            ]
        )
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        serial = SketchTree(CONFIG)
        for chunk in self._chunks():
            for tree in chunk:
                serial.update(tree)
        for query in ["(A (B))", "(A (B) (C))", "(X (A (B)))"]:
            assert merged.estimate_ordered(query) == pytest.approx(
                serial.estimate_ordered(query)
            )


class TestEncoderHammer:
    N_THREADS = 6
    ROUNDS = 30

    def test_concurrent_encode_batch_is_consistent(self):
        patterns = [
            from_sexpr(text).to_nested() for text in STREAM
        ]
        reference = dict(
            zip(patterns, PatternEncoder(seed=3).encode_batch(patterns))
        )
        shared = PatternEncoder(seed=3, cache_limit=4)  # forces evictions
        results = [None] * self.N_THREADS

        def worker(index):
            def run():
                mine = []
                for round_no in range(self.ROUNDS):
                    rotated = patterns[round_no % len(patterns) :] + patterns[
                        : round_no % len(patterns)
                    ]
                    mine.append((rotated, shared.encode_batch(rotated)))
                results[index] = mine

            return run

        run_threads([worker(i) for i in range(self.N_THREADS)])
        for mine in results:
            assert mine is not None
            for rotated, values in mine:
                assert values == [reference[p] for p in rotated]

    def test_lru_accounting_is_exact(self):
        patterns = [from_sexpr(text).to_nested() for text in STREAM]
        shared = PatternEncoder(seed=3)
        total = self.N_THREADS * self.ROUNDS * len(patterns)

        def worker():
            for _ in range(self.ROUNDS):
                shared.encode_batch(patterns)

        run_threads([worker] * self.N_THREADS)
        assert shared.cache_hits + shared.cache_misses == total
        assert shared.cache_size == len(set(patterns))


class TestRegistryHammer:
    N_THREADS = 8
    INCREMENTS = 2000

    def test_counter_totals_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")

        def worker():
            for _ in range(self.INCREMENTS):
                counter.inc()

        run_threads([worker] * self.N_THREADS)
        assert counter.value == self.N_THREADS * self.INCREMENTS

    def test_histogram_counts_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer_latency")

        def worker():
            for i in range(self.INCREMENTS):
                histogram.observe(1e-05 * (i % 7))

        run_threads([worker] * self.N_THREADS)
        assert histogram.count == self.N_THREADS * self.INCREMENTS
        assert histogram.cumulative()[-1][1] == self.N_THREADS * self.INCREMENTS

    def test_get_or_create_returns_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            for _ in range(200):
                seen.append(registry.counter("shared_name"))

        run_threads([worker] * self.N_THREADS)
        assert len({id(instrument) for instrument in seen}) == 1


class TestTopKHammer:
    def test_writer_with_concurrent_readers(self):
        matrix = SketchMatrix(40, 5, seed=1)
        values = [v for v in range(12) for _ in range(20)]
        for value in values:
            matrix.update(value, 1)
        tracker = TopKTracker(4, matrix)
        snapshots = []

        def writer():
            for value in values:
                tracker.process(value)

        def reader():
            for _ in range(200):
                adjust = tracker.adjustment([1, 2, 3])
                assert adjust is None or np.all(np.isfinite(adjust))
                state = tracker.snapshot()
                assert len(state) <= 4
                snapshots.append(state)

        run_threads([writer, reader, reader])
        assert tracker.n_tracked <= 4
        # A snapshot taken mid-hammer restores into a working tracker.
        restored = TopKTracker(4, matrix)
        restored.restore(snapshots[-1])
        assert restored.n_tracked == len(snapshots[-1])


class TestCheckpointHammer:
    N_THREADS = 4
    SAVES = 5

    def test_concurrent_saves_respect_retention(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        synopses = []
        for index in range(self.N_THREADS):
            synopsis = SketchTree(CONFIG)
            for text in STREAM[: index + 1]:
                synopsis.update(from_sexpr(text))
            synopses.append(synopsis)

        def worker(synopsis):
            def run():
                for _ in range(self.SAVES):
                    manager.save(synopsis)
                    manager.prune()

            return run

        run_threads([worker(s) for s in synopses])
        assert manager.n_saves == self.N_THREADS * self.SAVES
        assert len(manager.paths()) <= 2
        restored = manager.load_latest()
        assert restored is not None
        assert restored.n_trees in {s.n_trees for s in synopses}


class TestExactnessCrossCheck:
    def test_threaded_shards_match_exact_counts(self):
        # End-to-end: sharded threaded ingest, merged, compared against
        # the exact counter — the estimates carry only sketch error.
        trees = [from_sexpr(text) for text in STREAM * 20]
        exact = ExactCounter(CONFIG.max_pattern_edges)
        for tree in trees:
            exact.update(tree)
        shards = [SketchTree(CONFIG) for _ in range(3)]
        run_threads(
            [
                (lambda s, ts: lambda: [s.update(t) for t in ts])(
                    shards[i], trees[i::3]
                )
                for i in range(3)
            ]
        )
        merged = shards[0].merge(shards[1]).merge(shards[2])
        pattern = from_sexpr("(A (B) (C))").to_nested()
        actual = exact.count_ordered(pattern)
        assert merged.estimate_ordered(pattern) == pytest.approx(
            actual, abs=max(5, 0.3 * actual)
        )
