"""Tests for the experiment harness (error metric, factory, averaging)."""

import numpy as np
import pytest

from repro.core import ExactCounter, SketchTreeConfig
from repro.errors import ConfigError
from repro.experiments.harness import (
    SynopsisFactory,
    averaged_over_runs,
    evaluate_single,
    relative_error,
    run_seeds,
)
from repro.trees import from_sexpr
from repro.workload import generate_workload


def small_exact():
    exact = ExactCounter(2)
    for _ in range(30):
        exact.update(from_sexpr("(A (B) (C))"))
        exact.update(from_sexpr("(A (D))"))
    return exact


BASE = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
    seed=0, encoder_seed=42,
)


class TestRelativeError:
    def test_exact_estimate_is_zero_error(self):
        assert relative_error(10.0, 10) == 0.0

    def test_standard_definition(self):
        assert relative_error(12.0, 10) == pytest.approx(0.2)
        assert relative_error(8.0, 10) == pytest.approx(0.2)

    def test_sanity_bound_for_nonpositive(self):
        # Paper Section 7.5: approx <= 0 is replaced by 0.1 * actual.
        assert relative_error(-5.0, 100) == pytest.approx(0.9)
        assert relative_error(0.0, 100) == pytest.approx(0.9)

    def test_rejects_nonpositive_actual(self):
        with pytest.raises(ConfigError):
            relative_error(1.0, 0)


class TestSynopsisFactory:
    def test_factory_matches_direct_ingest(self):
        exact = small_exact()
        factory = SynopsisFactory(exact, BASE)
        from_factory = factory.build(seed=5)
        import dataclasses

        from repro.core import SketchTree

        direct = SketchTree(dataclasses.replace(BASE, seed=5))
        direct.ingest_counts(exact.counts, n_trees=exact.n_trees)
        pattern = ("A", (("B", ()),))
        assert from_factory.estimate_ordered(pattern) == direct.estimate_ordered(
            pattern
        )
        assert from_factory.n_values == direct.n_values

    def test_overrides_applied(self):
        factory = SynopsisFactory(small_exact(), BASE)
        synopsis = factory.build(seed=1, s1=13, topk_size=2)
        assert synopsis.config.s1 == 13
        assert synopsis.config.topk_size == 2

    def test_distinct_values_counted(self):
        factory = SynopsisFactory(small_exact(), BASE)
        assert factory.n_distinct_values == small_exact().n_distinct_patterns

    def test_pairing_mapping_rejected(self):
        import dataclasses

        pairing = dataclasses.replace(BASE, mapping="pairing")
        with pytest.raises(ConfigError):
            SynopsisFactory(small_exact(), pairing)


class TestEvaluation:
    def test_evaluate_single_buckets(self):
        exact = small_exact()
        workload = generate_workload(exact, ((0.0, 0.3), (0.3, 1.0)), seed=1)
        synopsis = SynopsisFactory(exact, BASE).build(seed=2)
        results = evaluate_single(synopsis, workload)
        assert len(results) == 2
        for result in results:
            if result.n_queries:
                assert result.mean_relative_error >= 0

    def test_empty_bucket_is_nan(self):
        exact = small_exact()
        workload = generate_workload(exact, ((0.9, 1.0),), seed=1)
        synopsis = SynopsisFactory(exact, BASE).build(seed=2)
        result = evaluate_single(synopsis, workload)[0]
        assert result.n_queries == 0
        assert result.mean_relative_error != result.mean_relative_error

    def test_averaging_over_runs(self):
        exact = small_exact()
        workload = generate_workload(exact, ((0.0, 1.0),), seed=1)
        factory = SynopsisFactory(exact, BASE)
        averaged = averaged_over_runs(
            factory, workload, evaluate_single, seeds=(1, 2, 3)
        )
        singles = [
            evaluate_single(factory.build(seed), workload)[0].mean_relative_error
            for seed in (1, 2, 3)
        ]
        assert averaged[0].mean_relative_error == pytest.approx(np.mean(singles))

    def test_averaging_requires_seeds(self):
        exact = small_exact()
        workload = generate_workload(exact, ((0.0, 1.0),), seed=1)
        factory = SynopsisFactory(exact, BASE)
        with pytest.raises(ConfigError):
            averaged_over_runs(factory, workload, evaluate_single, seeds=())

    def test_run_seeds_distinct(self):
        seeds = run_seeds(10)
        assert len(set(seeds)) == 10
