"""Tests for top-k frequent-value tracking (Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TopKTracker
from repro.errors import ConfigError
from repro.sketch import SketchMatrix


def loaded(counts, s1=60, s2=7, seed=0):
    matrix = SketchMatrix(s1, s2, seed=seed)
    matrix.update_counts(counts)
    return matrix


class TestAlgorithm4:
    def test_tracks_frequent_value(self):
        matrix = loaded({10: 500, 20: 3, 30: 2})
        tracker = TopKTracker(2, matrix)
        tracker.process(10)
        assert 10 in tracker.tracked
        # The delete condition: tracked frequency was deleted from sketch.
        assert abs(tracker.tracked[10] - 500) < 100

    def test_delete_condition_invariant(self):
        """After any sequence of operations, adding back every tracked
        frequency restores the original sketch counters exactly."""
        counts = {v: c for v, c in zip(range(20), [300, 200, 150] + [5] * 17)}
        matrix = loaded(counts)
        original = matrix.counters.copy()
        tracker = TopKTracker(3, matrix)
        for value in list(counts) * 2:
            tracker.process(value)
        restored = matrix.counters.copy()
        for value, freq in tracker.tracked.items():
            restored += freq * matrix.xi.xi(value)
        assert np.array_equal(restored, original)

    def test_low_frequency_value_not_tracked(self):
        matrix = loaded({10: 500, 20: 400, 30: 1})
        tracker = TopKTracker(2, matrix)
        for value in (10, 20, 30):
            tracker.process(value)
        assert 30 not in tracker.tracked

    def test_eviction_adds_back(self):
        matrix = loaded({1: 100, 2: 200, 3: 300})
        tracker = TopKTracker(1, matrix)
        tracker.process(1)
        assert set(tracker.tracked) == {1}
        tracker.process(3)  # 3 is more frequent: 1 must be evicted
        assert set(tracker.tracked) == {3}
        # After eviction, 1's occurrences are back in the sketch.
        assert abs(matrix.estimate(1) - 100) < 80

    def test_rearrival_of_tracked_value(self):
        matrix = loaded({5: 250, 6: 10})
        tracker = TopKTracker(2, matrix)
        tracker.process(5)
        first = tracker.tracked[5]
        matrix.update(5, 50)  # 50 more arrivals since tracking
        tracker.process(5)
        second = tracker.tracked[5]
        assert second >= first  # re-estimate includes the new arrivals

    def test_negative_estimate_not_tracked(self):
        matrix = SketchMatrix(10, 3, seed=1)  # empty stream
        tracker = TopKTracker(2, matrix)
        tracker.process(1234)
        assert tracker.tracked == {}

    def test_size_validation(self):
        with pytest.raises(ConfigError):
            TopKTracker(0, SketchMatrix(4, 2, seed=0))

    def test_memory_accounting(self):
        tracker = TopKTracker(50, SketchMatrix(4, 2, seed=0))
        assert tracker.memory_bytes() == 50 * 16

    def test_deleted_self_join_mass(self):
        matrix = loaded({1: 300, 2: 5})
        tracker = TopKTracker(1, matrix)
        tracker.process(1)
        mass = tracker.deleted_self_join_mass()
        assert mass == tracker.tracked[1] ** 2


class TestDeleteConditionProperty:
    """Hypothesis-driven check of the Algorithm 4 invariant."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(1, 50)),
            min_size=1,
            max_size=25,
        ),
        st.lists(st.integers(0, 15), max_size=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_random_operation_sequences(self, counts, ops):
        """Whatever interleaving of arrivals Algorithm 4 sees, adding the
        tracked frequencies back must restore the pre-tracking counters
        exactly — the delete condition of Section 5.2."""
        matrix = SketchMatrix(20, 3, seed=1)
        table: dict[int, int] = {}
        for value, count in counts:
            table[value] = table.get(value, 0) + count
        matrix.update_counts(table)
        original = matrix.counters.copy()
        tracker = TopKTracker(3, matrix)
        for value in ops:
            tracker.process(value)
        restored = matrix.counters.copy()
        for value, freq in tracker.tracked.items():
            restored += freq * matrix.xi.xi(value)
        assert np.array_equal(restored, original)
        # And the tracker never holds more than its capacity.
        assert tracker.n_tracked <= 3


class TestAdjustment:
    def test_adjustment_compensates_deletion(self):
        matrix = loaded({10: 400, 20: 7})
        tracker = TopKTracker(1, matrix)
        tracker.process(10)
        bare = matrix.estimate(10)
        compensated = matrix.estimate(10, adjust=tracker.adjustment([10]))
        assert abs(compensated - 400) < abs(bare - 400) + 1e-9
        assert abs(compensated - 400) < 100

    def test_adjustment_none_when_untracked(self):
        matrix = loaded({10: 400})
        tracker = TopKTracker(1, matrix)
        tracker.process(10)
        assert tracker.adjustment([99]) is None

    def test_adjustment_sums_tracked_values(self):
        matrix = loaded({1: 300, 2: 200, 3: 1})
        tracker = TopKTracker(2, matrix)
        tracker.process(1)
        tracker.process(2)
        adjust = tracker.adjustment([1, 2, 3])
        expected = tracker.tracked[1] * matrix.xi.xi(1) + tracker.tracked[
            2
        ] * matrix.xi.xi(2)
        assert np.array_equal(adjust, expected)

    def test_adjustment_ignores_duplicates(self):
        matrix = loaded({1: 300})
        tracker = TopKTracker(1, matrix)
        tracker.process(1)
        a = tracker.adjustment([1])
        b = tracker.adjustment([1, 1, 1])
        assert np.array_equal(a, b)


class TestBulkBuild:
    def test_finds_true_heavy_hitters(self):
        counts = {v: 2 for v in range(200)}
        heavy = {1000: 900, 1001: 800, 1002: 700}
        counts.update(heavy)
        matrix = loaded(counts, s1=80)
        tracker = TopKTracker(3, matrix)
        tracker.bulk_build(list(counts))
        assert set(tracker.tracked) == set(heavy)

    def test_reduces_residual_self_join(self):
        counts = {v: 2 for v in range(100)}
        counts[999] = 500
        matrix = loaded(counts, s1=80)
        before = int((matrix.counters.astype(np.int64) ** 2).mean())
        tracker = TopKTracker(1, matrix)
        tracker.bulk_build(list(counts))
        after = int((matrix.counters.astype(np.int64) ** 2).mean())
        # E[X^2] estimates the self-join size; deleting the heavy hitter
        # must reduce it drastically.
        assert after < before / 10

    def test_empty_input(self):
        tracker = TopKTracker(2, SketchMatrix(4, 2, seed=0))
        tracker.bulk_build([])
        assert tracker.tracked == {}
