"""Tests for AMS sketches: unbiasedness, boosting, algebra, batching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sketch import AmsSketch, SketchMatrix, XiGenerator


def loaded_matrix(counts, s1=40, s2=5, seed=0, independence=4):
    matrix = SketchMatrix(s1, s2, independence=independence, seed=seed)
    matrix.update_counts(counts)
    return matrix


class TestSingleSketch:
    def test_single_value_exact(self):
        sketch = AmsSketch(seed=1)
        for _ in range(5):
            sketch.update(42)
        assert sketch.estimate(42) == 5.0

    def test_delete_restores_zero(self):
        sketch = AmsSketch(seed=1)
        sketch.update(7, 3)
        sketch.update(7, -3)
        assert sketch.counter == 0


class TestSketchMatrix:
    def test_estimate_recovers_frequency(self):
        matrix = loaded_matrix({10: 500, 20: 30, 30: 7}, s1=80, s2=7)
        assert abs(matrix.estimate(10) - 500) < 60
        assert abs(matrix.estimate(20) - 30) < 60

    def test_absent_value_estimates_near_zero(self):
        matrix = loaded_matrix({10: 100}, s1=80, s2=7)
        assert abs(matrix.estimate(99)) <= 100  # |xi_99 * xi_10 * 100|

    def test_exact_for_singleton_stream(self):
        # With a single distinct value the estimate is exact: xi^2 = 1.
        matrix = loaded_matrix({5: 123})
        assert matrix.estimate(5) == 123.0

    def test_update_batch_equals_loop(self):
        a = SketchMatrix(10, 3, seed=4)
        b = SketchMatrix(10, 3, seed=4)
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        for v in values:
            a.update(v)
        b.update_batch(np.asarray(values, dtype=np.int64))
        assert np.array_equal(a.counters, b.counters)

    def test_update_counts_equals_loop(self):
        a = SketchMatrix(10, 3, seed=4)
        b = SketchMatrix(10, 3, seed=4)
        counts = {3: 2, 7: 5, 11: 1}
        for value, count in counts.items():
            for _ in range(count):
                a.update(value)
        b.update_counts(counts)
        assert np.array_equal(a.counters, b.counters)

    def test_delete_inverts_update(self):
        matrix = SketchMatrix(8, 2, seed=1)
        matrix.update(9, 4)
        matrix.delete(9, 4)
        assert not matrix.counters.any()

    def test_batch_length_mismatch(self):
        matrix = SketchMatrix(4, 2, seed=0)
        with pytest.raises(ConfigError):
            matrix.update_batch(np.asarray([1, 2]), np.asarray([1]))

    def test_estimate_batch_matches_scalar(self):
        matrix = loaded_matrix({10: 50, 20: 3, 31: 8})
        values = np.asarray([10, 20, 31, 99], dtype=np.int64)
        batch = matrix.estimate_batch(values)
        for value, expected in zip(values, batch):
            assert matrix.estimate(int(value)) == pytest.approx(expected)

    def test_adjust_shifts_estimate(self):
        matrix = loaded_matrix({10: 50})
        # Deleting 50 occurrences and compensating with adjust must agree.
        adjust = matrix.xi.xi(10) * 50
        matrix.delete(10, 50)
        assert matrix.estimate(10) == 0.0
        assert matrix.estimate(10, adjust=adjust) == 50.0

    def test_memory_bytes(self):
        matrix = SketchMatrix(25, 7, seed=0)
        assert matrix.memory_bytes() == 25 * 7 * 8

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigError):
            SketchMatrix(0, 5)

    def test_shared_xi_size_checked(self):
        xi = XiGenerator(10, seed=0)
        with pytest.raises(ConfigError):
            SketchMatrix(5, 3, xi=xi)


class TestEstimatorQuality:
    """Statistical guarantees, checked empirically with fixed seeds."""

    def test_unbiasedness_over_many_draws(self):
        # Mean of single-instance estimates over independent sketches
        # approaches the true frequency (Equation 1).
        counts = {1: 40, 2: 25, 3: 10, 4: 5}
        estimates = []
        for seed in range(300):
            matrix = SketchMatrix(1, 1, seed=seed)
            matrix.update_counts(counts)
            estimates.append(matrix.estimate(2))
        assert abs(np.mean(estimates) - 25) < 5

    def test_variance_bounded_by_self_join_size(self):
        # Var[xi_q X] <= SJ(S) (Equation 2).
        counts = {1: 40, 2: 25, 3: 10, 4: 5}
        self_join = sum(c * c for c in counts.values())
        estimates = []
        for seed in range(300):
            matrix = SketchMatrix(1, 1, seed=seed)
            matrix.update_counts(counts)
            estimates.append(matrix.estimate(2))
        # Allow slack for sampling error of the variance itself.
        assert np.var(estimates) < 1.6 * self_join

    def test_more_s1_means_less_error(self):
        counts = {v: 3 for v in range(200)}
        counts[500] = 40
        errors = {}
        for s1 in (5, 80):
            errs = []
            for seed in range(30):
                matrix = SketchMatrix(s1, 5, seed=seed)
                matrix.update_counts(counts)
                errs.append(abs(matrix.estimate(500) - 40))
            errors[s1] = np.mean(errs)
        assert errors[80] < errors[5]

    def test_estimate_sum_unbiased(self):
        counts = {1: 30, 2: 20, 3: 10}
        estimates = []
        for seed in range(300):
            matrix = SketchMatrix(1, 1, seed=seed)
            matrix.update_counts(counts)
            estimates.append(matrix.estimate_sum([1, 2]))
        assert abs(np.mean(estimates) - 50) < 8

    def test_estimate_product_unbiased(self):
        counts = {1: 12, 2: 9, 3: 5}
        estimates = []
        for seed in range(400):
            matrix = SketchMatrix(1, 1, independence=4, seed=seed)
            matrix.update_counts(counts)
            estimates.append(matrix.estimate_product([1, 2]))
        assert abs(np.mean(estimates) - 108) < 25

    def test_product_requires_2d_wise_independence(self):
        matrix = SketchMatrix(4, 2, independence=4, seed=0)
        with pytest.raises(ConfigError):
            matrix.estimate_product([1, 2, 3])  # degree 3 needs 6-wise


class TestAlgebra:
    def test_merge_requires_shared_xi(self):
        a = SketchMatrix(4, 2, seed=0)
        b = SketchMatrix(4, 2, seed=0)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_merge_sums_counters(self):
        xi = XiGenerator(8, seed=3)
        a = SketchMatrix(4, 2, xi=xi)
        b = SketchMatrix(4, 2, xi=xi)
        a.update(1, 10)
        b.update(1, 5)
        merged = a.merge(b)
        assert merged.estimate(1) == 15.0  # single distinct value: exact
        b.update(2, 7)
        merged = a.merge(b)
        assert np.array_equal(merged.counters, a.counters + b.counters)

    def test_copy_is_independent(self):
        matrix = SketchMatrix(4, 2, seed=1)
        matrix.update(1, 5)
        clone = matrix.copy()
        clone.update(1, 5)
        assert matrix.estimate(1) == 5.0
        assert clone.estimate(1) == 10.0

    @given(
        st.dictionaries(
            st.integers(0, 1000), st.integers(1, 20), min_size=1, max_size=20
        ),
        st.dictionaries(
            st.integers(0, 1000), st.integers(1, 20), max_size=20
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_linearity_property(self, counts_a, counts_b):
        """Sketching A then B equals sketching the merged counts."""
        xi = XiGenerator(6, seed=2)
        one = SketchMatrix(3, 2, xi=xi)
        one.update_counts(counts_a)
        one.update_counts(counts_b)
        combined = dict(counts_a)
        for value, count in counts_b.items():
            combined[value] = combined.get(value, 0) + count
        two = SketchMatrix(3, 2, xi=xi)
        two.update_counts(combined)
        assert np.array_equal(one.counters, two.counters)
