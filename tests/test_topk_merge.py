"""The fold/unfold protocol: mergeable top-k state (Section 5.2 lifted).

Algorithm 4 *folds* heavy mass out of the counters; these tests pin the
protocol that makes the folded state composable again:

* ``TopKTracker.unfold`` restores counters **bit-identical** to a
  ``topk_size=0`` run — the property `benchmarks/bench_ingest.py` and
  `examples/serving_smoke.py` lean on;
* ``SketchTree.merge`` accepts top-k operands (unfold → sum → refold)
  without mutating them;
* windowed and sharded top-k deployments answer like a single-synopsis
  run over the same trees;
* tracker state survives the snapshot formats, per bucket and per
  shard.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SketchTree, SketchTreeConfig
from repro.core import TopKTracker, WindowedSketchTree
from repro.core.topk import fold_vector, refold
from repro.serve.service import ShardedService
from repro.sketch import SketchMatrix
from repro.trees import from_sexpr
from repro.trees.builders import from_nested
from tests.strategies import nested_trees

TOPK = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
    topk_size=3, seed=9,
)
#: Same ξ family (the seed derivation excludes topk_size), no tracking.
PLAIN = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=2, n_virtual_streams=31,
    topk_size=0, seed=9,
)

#: A skewed stream: one dominant pattern, a second tier, a light tail.
TREES = [
    from_sexpr(text)
    for text in ["(A (B))"] * 30 + ["(A (C))"] * 10 + ["(D (E) (F))"] * 5
]


def counters_of(synopsis: SketchTree) -> list[np.ndarray]:
    streams = synopsis.streams
    return [streams.sketch(r).counters for r in range(streams.n_streams)]


def unfold_all(synopsis: SketchTree) -> dict[int, int]:
    state: dict[int, int] = {}
    for _, tracker in list(synopsis.streams.iter_trackers()):
        state.update(tracker.unfold())
    return state


def assert_counters_equal(a: SketchTree, b: SketchTree) -> None:
    for left, right in zip(counters_of(a), counters_of(b)):
        assert np.array_equal(left, right)


class TestUnfoldBitIdentity:
    """Unfolding must be the exact inverse of Algorithm 4's deletions."""

    @given(st.lists(nested_trees(max_nodes=6), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_unfold_restores_topk0_counters(self, forest):
        """Whatever stream the tracker saw, adding every tracked
        ``f_v · ξ(v)`` back yields the counters of a run that never
        tracked at all — int64 equality, not approximation."""
        trees = [from_nested(nested) for nested in forest]
        tracked_run = SketchTree(TOPK)
        plain_run = SketchTree(PLAIN)
        tracked_run.update_batch(trees)
        plain_run.update_batch(trees)
        unfold_all(tracked_run)
        assert_counters_equal(plain_run, tracked_run)

    def test_unfold_clears_the_tracker(self):
        synopsis = SketchTree(TOPK)
        synopsis.update_batch(TREES)
        assert synopsis.tracked()
        state = unfold_all(synopsis)
        assert state  # the folded mass was returned to the caller
        assert synopsis.tracked() == {}
        assert synopsis.deleted_self_join_mass() == 0


class TestFoldRefold:
    def test_fold_vector_is_the_manual_sum(self):
        matrix = SketchMatrix(20, 3, seed=1)
        state = {3: 5, 8: 2}
        expected = 5 * matrix.xi.xi(3) + 2 * matrix.xi.xi(8)
        assert np.array_equal(fold_vector(matrix, state), expected)

    def test_refold_reestablishes_the_delete_condition(self):
        matrix = SketchMatrix(30, 3, seed=2)
        matrix.update_counts({1: 300, 2: 200, 3: 4, 4: 2})
        tracker = TopKTracker(2, matrix)
        tracker.process_many([1, 2, 3, 4])
        candidates = tracker.unfold()
        linear = matrix.counters.copy()

        rebuilt = refold(matrix, candidates, 2)
        assert rebuilt.n_tracked > 0
        # Delete condition on the rebuilt tracker: its fold vector is
        # exactly what refolding removed from the linear counters.
        restored = matrix.counters + fold_vector(matrix, rebuilt.tracked)
        assert np.array_equal(restored, linear)


class TestMergeTopK:
    @staticmethod
    def halves():
        a, b = SketchTree(TOPK), SketchTree(TOPK)
        a.update_batch(TREES[:20])
        b.update_batch(TREES[20:])
        return a, b

    def test_merge_unfolds_to_single_stream_counters(self):
        a, b = self.halves()
        merged = a.merge(b)
        reference = SketchTree(PLAIN)
        reference.update_batch(TREES)
        unfold_all(merged)
        assert_counters_equal(reference, merged)

    def test_merge_does_not_mutate_operands(self):
        a, b = self.halves()
        before_counters = [c.copy() for c in counters_of(a)]
        before_tracked = a.tracked()
        a.merge(b)
        assert a.tracked() == before_tracked
        for left, right in zip(before_counters, counters_of(a)):
            assert np.array_equal(left, right)

    def test_merged_tracker_holds_the_heavy_hitters(self):
        a, b = self.halves()
        merged = a.merge(b)
        ranked = merged.tracked_patterns()
        assert ranked, "merge over a skewed stream must refold trackers"
        # The dominant value's whole-stream weight, re-estimated against
        # the merged (whole-stream) counters, tops the list.  (The merged
        # synopsis' encoder is fresh, so names resolve via the operands'
        # encoders — exactly what the serving tier's /admin/topk does.)
        assert ranked[0]["frequency"] >= 30
        heavy = {
            a.encoder.encode(("A", ())),
            a.encoder.encode(("A", (("B", ()),))),
        }
        assert ranked[0]["value"] in heavy

    def test_merged_interval_covers_the_exact_count(self):
        a, b = self.halves()
        merged = a.merge(b)
        interval = merged.estimate_ordered_interval("(A (B))", confidence=0.9)
        assert interval.low <= 30 <= interval.high


class TestShardedTopK:
    def test_sharded_merge_equals_single_synopsis_run(self):
        service = ShardedService(TOPK, n_shards=3)
        service.start()
        try:
            for start in range(0, len(TREES), 5):
                service.submit(TREES[start : start + 5])
            merged = service.merged_synopsis()
        finally:
            service.stop()

        single = SketchTree(TOPK)
        single.update_batch(TREES)
        # Estimator-level agreement within the two runs' own Chebyshev
        # half-widths: both re-estimate against whole-stream counters
        # that are (once unfolded) bit-identical.
        for query in ("(A (B))", "(A (C))", "(D (E))"):
            ours = merged.estimate_ordered_interval(query, confidence=0.9)
            reference = single.estimate_ordered_interval(query, confidence=0.9)
            assert abs(ours.estimate - reference.estimate) <= (
                ours.half_width + reference.half_width + 1e-9
            )
        # And counter-level bit-identity once both are unfolded.
        unfold_all(merged)
        unfold_all(single)
        assert_counters_equal(single, merged)

    def test_service_topk_report(self):
        service = ShardedService(TOPK, n_shards=2)
        service.start()
        try:
            service.submit(TREES)
            report = service.topk(limit=3)
        finally:
            service.stop()
        assert report["merged"] is True
        assert report["n_trees"] == len(TREES)
        frequencies = [entry["frequency"] for entry in report["patterns"]]
        assert frequencies == sorted(frequencies, reverse=True)
        assert report["patterns"][0]["pattern"] is not None

    def test_service_window_topk_report(self):
        service = ShardedService(
            TOPK, n_shards=2, window_trees=8, bucket_trees=4
        )
        service.start()
        try:
            service.submit(TREES)
            service.drain()
            report = service.window_topk(limit=4)
        finally:
            service.stop()
        assert report["window_trees"] == 8
        assert 0 < report["trees_covered"] <= len(TREES)
        assert report["patterns"]


class TestWindowedTopK:
    @staticmethod
    def window(window_trees=12, bucket_trees=4):
        window = WindowedSketchTree(
            TOPK, window_trees=window_trees, bucket_trees=bucket_trees
        )
        window.ingest(TREES)
        return window

    def test_merge_on_expiry_refolds(self):
        window = self.window()
        assert window.n_refolds > 0
        assert window.n_refold_candidates >= window.n_refolds

    def test_window_estimates_match_single_synopsis_run(self):
        """A top-k window answers like one top-k synopsis fed exactly the
        window's live trees — within both runs' Chebyshev half-widths."""
        window = self.window()
        live = TREES[-window.window_size_actual :]
        reference = SketchTree(TOPK)
        reference.update_batch(live)
        for query in ("(A (B))", "(A (C))", "(D (F))"):
            ours = window.estimate_ordered_interval(query, confidence=0.9)
            single = reference.estimate_ordered_interval(query, confidence=0.9)
            assert abs(ours.estimate - single.estimate) <= (
                ours.half_width + single.half_width + 1e-9
            )

    def test_tracked_state_follows_expiry(self):
        """Once the heavy prefix leaves the window, the live tracked set
        reflects the window's trees, not the whole stream's."""
        window = WindowedSketchTree(TOPK, window_trees=8, bucket_trees=4)
        window.ingest([from_sexpr("(A (B))")] * 40)
        window.ingest([from_sexpr("(L (M))")] * 40)
        tracked = window.tracked()
        assert tracked
        # Every live bucket saw only (L (M)) trees; the expired (A (B))
        # mass is gone from the window's tracked state entirely.
        patterns = [entry["pattern"] for entry in window.tracked_patterns()]
        assert all("A" not in str(pattern) for pattern in patterns if pattern)
        assert window.deleted_self_join_mass() > 0

    def test_memory_report_counts_per_bucket_tracker_bytes(self):
        with_topk = self.window()
        without = WindowedSketchTree(PLAIN, window_trees=12, bucket_trees=4)
        without.ingest(TREES)
        assert without.memory_report().provisioned_topk_bytes == 0
        report = with_topk.memory_report()
        assert report.provisioned_topk_bytes == sum(
            bucket.memory_report().provisioned_topk_bytes
            for bucket in with_topk._live_buckets()
        )
        assert report.provisioned_topk_bytes > 0


class TestTrackerSnapshots:
    def test_window_round_trip_preserves_per_bucket_trackers(self):
        window = WindowedSketchTree(TOPK, window_trees=12, bucket_trees=4)
        window.ingest(TREES)
        restored = WindowedSketchTree.from_bytes(window.to_bytes())
        assert restored.tracked() == window.tracked()
        for ours, theirs in zip(
            window._live_buckets(), restored._live_buckets()
        ):
            assert ours.tracked() == theirs.tracked()
        # The restored window *continues* identically: the tracker side
        # of the delete condition was rebuilt, not just displayed.
        more = [from_sexpr("(A (B))")] * 10
        window.ingest(more)
        restored.ingest(more)
        assert restored.tracked() == window.tracked()
        assert restored.estimate_ordered("(A (B))") == window.estimate_ordered(
            "(A (B))"
        )

    def test_service_resume_restores_per_shard_trackers(self, tmp_path):
        first = ShardedService(
            TOPK, n_shards=2, checkpoint_dir=tmp_path / "ck"
        )
        first.start()
        first.submit(TREES)
        first.drain()
        before = [shard.synopsis.tracked() for shard in first.shards]
        assert any(before)
        first.snapshot()
        first.stop()

        second = ShardedService(
            TOPK, n_shards=2, checkpoint_dir=tmp_path / "ck", resume=True
        )
        after = [shard.synopsis.tracked() for shard in second.shards]
        assert after == before
        second.start()
        try:
            merged = second.merged_synopsis()
        finally:
            second.stop()
        reference = SketchTree(TOPK)
        reference.update_batch(TREES)
        unfold_all(merged)
        unfold_all(reference)
        assert_counters_equal(reference, merged)
