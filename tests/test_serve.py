"""Integration tests for the sharded serving tier (:mod:`repro.serve`).

The load-bearing assertion is the merge contract over HTTP: after
concurrent multi-shard ingest with estimate queries in flight, the
quiesced ``/admin/estimate/*`` answers must be **bit-identical** to a
single-threaded :class:`SketchTree` fed the concatenated stream — AMS
linearity end to end, through the queue/drain/merge machinery.

The suite boots real servers on ephemeral ports (``http.server`` in a
background thread) — no sockets are mocked.
"""

import json
import queue
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import SketchTreeConfig
from repro.core.sketchtree import SketchTree
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.serve.api import make_server
from repro.serve.app import ServerApp, build_parser, run_from_args
from repro.serve.models import (
    ApiError,
    parse_estimate_request,
    parse_ingest_request,
)
from repro.serve.service import ShardedService
from repro.serve.shards import IngestShard
from repro.trees import from_sexpr

CONFIG = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=3, n_virtual_streams=31, seed=7
)

STREAM = [
    "(A (B) (C))",
    "(A (C) (B))",
    "(A (B (C)))",
    "(A (B) (C))",
    "(X (A (B)))",
    "(A (B) (B))",
    "(A (B (C) (B)))",
    "(X (A (C)))",
] * 6

QUERIES = ["(A (B))", "(A (C))", "(X (A))", "(A (B (C)))"]


def reference_synopsis(texts=STREAM):
    synopsis = SketchTree(CONFIG)
    synopsis.update_batch([from_sexpr(text) for text in texts])
    return synopsis


class Client:
    """A tiny JSON client over urllib (raises nothing on 4xx/5xx)."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode()

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture
def server(tmp_path):
    """A started 3-shard server on an ephemeral port, stopped afterwards."""
    service = ShardedService(
        CONFIG, n_shards=3, checkpoint_dir=tmp_path / "ckpts"
    )
    app = ServerApp(service, port=0)
    app.start()
    yield app, Client(app.port)
    app.request_stop()
    app.shutdown()


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


class TestModels:
    def test_ingest_parses_sexprs(self):
        trees = parse_ingest_request({"trees": ["(A (B))", "(C)"]})
        # The root is the last node in postorder.
        assert [tree.labels[-1] for tree in trees] == ["A", "C"]

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"trees": []},
            {"trees": "not-a-list"},
            {"trees": [42]},
            {"trees": ["(unclosed"]},
        ],
    )
    def test_ingest_rejections_are_400(self, payload):
        with pytest.raises(ApiError) as excinfo:
            parse_ingest_request(payload)
        assert excinfo.value.status == 400

    def test_ingest_oversize_is_413(self):
        with pytest.raises(ApiError) as excinfo:
            parse_ingest_request({"trees": ["(A)"] * 10_001})
        assert excinfo.value.status == 413

    def test_ingest_error_names_the_position(self):
        with pytest.raises(ApiError, match=r"trees\[1\]"):
            parse_ingest_request({"trees": ["(A)", "(("]})

    def test_estimate_unknown_kind_is_404(self):
        with pytest.raises(ApiError) as excinfo:
            parse_estimate_request("median", {"query": "(A)"})
        assert excinfo.value.status == 404

    def test_estimate_sum_takes_queries_list(self):
        assert parse_estimate_request("sum", {"queries": ["(A)"]}) == ["(A)"]
        with pytest.raises(ApiError):
            parse_estimate_request("sum", {"query": "(A)"})

    def test_estimate_single_takes_query_string(self):
        assert parse_estimate_request("ordered", {"query": "(A)"}) == "(A)"
        with pytest.raises(ApiError):
            parse_estimate_request("ordered", {"queries": ["(A)"]})


# ---------------------------------------------------------------------------
# Shards
# ---------------------------------------------------------------------------


class TestIngestShard:
    def test_drain_means_applied(self):
        shard = IngestShard(0, CONFIG)
        shard.start()
        shard.submit([from_sexpr(text) for text in STREAM])
        shard.drain()
        assert shard.synopsis.n_trees == len(STREAM)
        shard.stop()

    def test_full_queue_backpressures(self):
        shard = IngestShard(0, CONFIG, max_pending=1)  # never started
        shard.submit([from_sexpr("(A)")])
        with pytest.raises(queue.Full):
            shard.submit([from_sexpr("(A)")])

    def test_submit_after_stop_is_refused(self):
        shard = IngestShard(0, CONFIG)
        shard.start()
        shard.stop()
        with pytest.raises(ConfigError):
            shard.submit([from_sexpr("(A)")])

    def test_fault_is_recorded_and_quiesce_survives(self):
        shard = IngestShard(0, CONFIG)
        shard.start()
        shard._queue.put_nowait(object())  # not a batch: the writer faults
        shard.submit([from_sexpr("(A)")])  # still consumed and acked
        shard.drain()  # must not deadlock on the faulted shard
        assert shard.error() is not None
        shard.stop()

    def test_restored_synopsis_config_must_match(self):
        other = SketchTree(
            SketchTreeConfig(s1=10, s2=3, n_virtual_streams=31, seed=1)
        )
        with pytest.raises(ConfigError):
            IngestShard(0, CONFIG, synopsis=other)


# ---------------------------------------------------------------------------
# Service (no HTTP)
# ---------------------------------------------------------------------------


class TestShardedService:
    def test_accepts_topk_config(self):
        """Fold/unfold merging lifts the old shard-level topk ban."""
        service = ShardedService(
            SketchTreeConfig(
                s1=10, s2=3, n_virtual_streams=31, topk_size=2, seed=3
            ),
            n_shards=2,
        )
        assert service.stats()["config"]["topk_size"] == 2

    def test_rejects_negative_window_trees(self):
        with pytest.raises(ConfigError):
            ShardedService(CONFIG, window_trees=-1)

    def test_rejects_resume_without_dir(self):
        with pytest.raises(ConfigError):
            ShardedService(CONFIG, resume=True)

    def test_round_robin_covers_all_shards(self):
        service = ShardedService(CONFIG, n_shards=3)
        service.start()
        for text in STREAM:
            service.submit([from_sexpr(text)])
        service.drain()
        assert [s.synopsis.n_trees for s in service.shards] == [16, 16, 16]
        service.stop()

    def test_merged_is_bit_identical_to_serial_run(self):
        service = ShardedService(CONFIG, n_shards=4)
        service.start()
        service.submit([from_sexpr(text) for text in STREAM])
        merged = service.merged_synopsis()
        reference = reference_synopsis()
        for query in QUERIES:
            assert merged.estimate_ordered(query) == reference.estimate_ordered(
                query
            )
        service.stop()

    def test_stop_is_idempotent_and_refuses_ingest(self):
        service = ShardedService(CONFIG, n_shards=2)
        service.start()
        service.stop()
        assert service.stop() == []
        with pytest.raises(ApiError):
            service.submit([from_sexpr("(A)")])

    def test_health_and_ready_derive_from_gauges(self):
        registry = MetricsRegistry()
        service = ShardedService(CONFIG, n_shards=2, metrics=registry)
        assert not service.ready()["ready"]  # drain threads not started
        service.start()
        assert service.ready()["ready"]
        assert service.health()["status"] == "ok"
        assert registry.gauge("serve_shards_alive").value == 2
        service.stop()
        assert not service.ready()["ready"]


# ---------------------------------------------------------------------------
# HTTP integration
# ---------------------------------------------------------------------------


class TestHttpIntegration:
    def test_concurrent_ingest_then_merged_estimates_bit_identical(
        self, server
    ):
        """The acceptance test: ≥2 shards, concurrent ingest with reads
        in flight, then quiesced merge answers == single-threaded run."""
        app, client = server
        chunks = [STREAM[i : i + 4] for i in range(0, len(STREAM), 4)]
        read_errors = []
        stop_reading = threading.Event()

        def reader():
            while not stop_reading.is_set():
                status, body = client.post(
                    "/estimate/ordered", {"query": "(A (B))"}
                )
                if status != 200 or "estimate" not in body:
                    read_errors.append((status, body))

        def writer(chunk):
            status, body = client.post("/ingest", {"trees": chunk})
            assert status == 202, body

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        writers = [
            threading.Thread(target=writer, args=(chunk,)) for chunk in chunks
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop_reading.set()
        for thread in readers:
            thread.join()
        assert not read_errors

        status, drained = client.post("/admin/drain", {})
        assert status == 200 and drained["n_trees"] == len(STREAM)
        reference = reference_synopsis()
        for query in QUERIES:
            status, body = client.post(
                "/admin/estimate/ordered", {"query": query}
            )
            assert status == 200
            assert body["estimate"] == reference.estimate_ordered(query)
        status, body = client.post(
            "/admin/estimate/sum", {"queries": QUERIES}
        )
        assert body["estimate"] == reference.estimate_sum(QUERIES)

    def test_lockfree_estimates_sum_per_shard_answers(self, server):
        app, client = server
        client.post("/ingest", {"trees": STREAM})
        client.post("/admin/drain", {})
        expected = sum(
            shard.synopsis.estimate_unordered("(A (B))")
            for shard in app.service.shards
        )
        status, body = client.post(
            "/estimate/unordered", {"query": "(A (B))"}
        )
        assert status == 200 and body["estimate"] == expected

    def test_xpath_estimates_serve(self, server):
        app, client = server
        client.post("/ingest", {"trees": STREAM})
        client.post("/admin/drain", {})
        status, body = client.post("/estimate/xpath", {"query": "/A/B"})
        assert status == 200 and body["estimate"] > 0

    def test_health_ready_and_stats(self, server):
        app, client = server
        assert client.get("/healthz")[0] == 200
        assert client.get("/readyz")[0] == 200
        client.post("/ingest", {"trees": STREAM[:8]})
        client.post("/admin/drain", {})
        stats = json.loads(client.get("/stats")[1])
        assert stats["n_trees"] == 8
        assert len(stats["shards"]) == 3
        assert stats["config"]["seed"] == CONFIG.seed

    def test_metrics_endpoint_parses_with_multiline_help(self, server):
        """The live /metrics text must scan line-by-line even though
        serve_queue_depth's HELP is deliberately multi-line."""
        app, client = server
        client.post("/ingest", {"trees": STREAM[:8]})
        client.post("/admin/drain", {})
        status, text = client.get("/metrics")
        assert status == 200
        helps = {}
        for line in text.splitlines():
            assert line, "blank line in exposition output"
            if line.startswith("# HELP "):
                name, escaped = line[len("# HELP "):].split(" ", 1)
                helps[name] = escaped
            elif line.startswith("# TYPE "):
                assert line.split(" ")[-1] in ("counter", "gauge", "histogram")
            else:
                float(line.rsplit(" ", 1)[1])
        assert "\\n" in helps["repro_serve_queue_depth"]  # escaped, not raw
        assert "repro_serve_trees_total 8" in text
        assert "repro_serve_shards 3" in text

    def test_error_mapping(self, server):
        app, client = server
        assert client.post("/ingest", {"trees": []})[0] == 400
        assert client.post("/estimate/median", {"query": "(A)"})[0] == 404
        assert client.get("/nope")[0] == 404
        assert client.post("/nope", {})[0] == 404
        # An invalid pattern reaches the synopsis and maps to a 400.
        status, body = client.post(
            "/estimate/ordered", {"query": "(A (B (C (D (E)))))"}
        )
        assert status == 400 and "error" in body

    def test_backpressure_is_503_with_retry_after(self, tmp_path):
        service = ShardedService(CONFIG, n_shards=1, max_pending=1)
        # Shards deliberately NOT started: the queue can only fill.
        httpd = make_server(service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = Client(httpd.server_address[1])
        try:
            assert client.post("/ingest", {"trees": ["(A)"]})[0] == 202
            status, body = client.post("/ingest", {"trees": ["(A)"]})
            assert status == 503
            assert "retry" in body["error"].lower()
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_snapshot_resume_round_trip(self, tmp_path):
        first = ShardedService(
            CONFIG, n_shards=2, checkpoint_dir=tmp_path / "ck"
        )
        app = ServerApp(first, port=0)
        app.start()
        client = Client(app.port)
        client.post("/ingest", {"trees": STREAM})
        status, body = client.post("/admin/snapshot", {})
        assert status == 200 and len(body["checkpoints"]) == 2
        app.request_stop()
        app.wait_for_signal()
        finals = app.shutdown()
        assert len(finals) == 2  # SIGTERM path writes final checkpoints

        second = ShardedService(
            CONFIG, n_shards=2, checkpoint_dir=tmp_path / "ck", resume=True
        )
        second.start()
        reference = reference_synopsis()
        merged = second.merged_synopsis()
        for query in QUERIES:
            assert merged.estimate_ordered(query) == reference.estimate_ordered(
                query
            )
        second.stop()

    def test_snapshot_without_dir_is_409(self):
        service = ShardedService(CONFIG, n_shards=1)
        service.start()
        httpd = make_server(service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            assert Client(httpd.server_address[1]).post(
                "/admin/snapshot", {}
            )[0] == 409
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()

    def test_graceful_stop_applies_queued_batches(self, tmp_path):
        service = ShardedService(CONFIG, n_shards=2)
        app = ServerApp(service, port=0)
        app.start()
        client = Client(app.port)
        client.post("/ingest", {"trees": STREAM})
        app.request_stop()
        app.wait_for_signal()
        app.shutdown()  # must drain before joining the drain threads
        total = sum(shard.synopsis.n_trees for shard in service.shards)
        assert total == len(STREAM)
        # The listener is closed: new connections are refused.
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{app.port}/healthz", timeout=2
            )


# ---------------------------------------------------------------------------
# CLI entry points
# ---------------------------------------------------------------------------


class TestCli:
    def test_module_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.port == 8080 and args.shards == 4

    def test_experiments_cli_has_serve_subcommand(self):
        from repro.cli import build_parser as experiments_parser

        args = experiments_parser().parse_args(
            ["serve", "--port", "0", "--shards", "2"]
        )
        assert args.experiment == "serve" and args.shards == 2

    def test_run_from_args_serves_and_stops_on_signal(self, capsys):
        args = build_parser().parse_args(
            ["--port", "0", "--shards", "2", "--s1", "20", "--streams", "31"]
        )
        # Drive run_from_args from a helper thread: install_signal_handlers
        # requires the main thread, so patch it out and stop via the app.
        import repro.serve.app as app_module

        original_wait = app_module.ServerApp.wait_for_signal
        original_install = app_module.ServerApp.install_signal_handlers

        def wait_and_record(self):
            self.request_stop()
            original_wait(self)

        app_module.ServerApp.install_signal_handlers = lambda self: None
        app_module.ServerApp.wait_for_signal = wait_and_record
        try:
            assert run_from_args(args) == 0
        finally:
            app_module.ServerApp.install_signal_handlers = original_install
            app_module.ServerApp.wait_for_signal = original_wait
        out = capsys.readouterr().out
        assert "serving on http://" in out
        assert "stopped cleanly" in out
