"""Tests for the from-scratch XML parser and serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlParseError
from repro.trees import from_nested, from_sexpr, parse_forest, parse_xml, to_xml
from repro.trees.xml import iter_parse_forest


class TestParser:
    def test_simple_element(self):
        tree = parse_xml("<a/>")
        assert tree.labels == ("a",)

    def test_nested_elements(self):
        tree = parse_xml("<a><b/><c><d/></c></a>")
        assert tree.to_nested() == ("a", (("b", ()), ("c", (("d", ()),))))

    def test_text_becomes_leaf_child(self):
        tree = parse_xml("<a>hello</a>")
        assert tree.to_nested() == ("a", (("hello", ()),))

    def test_mixed_content_order_preserved(self):
        tree = parse_xml("<a>x<b/>y</a>")
        assert tree.to_nested() == ("a", (("x", ()), ("b", ()), ("y", ())))

    def test_whitespace_only_text_skipped(self):
        tree = parse_xml("<a>\n  <b/>\n</a>")
        assert tree.to_nested() == ("a", (("b", ()),))

    def test_attributes_become_at_children(self):
        tree = parse_xml('<a x="1" y="two"/>')
        assert tree.to_nested() == (
            "a",
            (("@x", (("1", ()),)), ("@y", (("two", ()),))),
        )

    def test_attributes_dropped_when_disabled(self):
        tree = parse_xml('<a x="1"><b/></a>', keep_attributes=False)
        assert tree.to_nested() == ("a", (("b", ()),))

    def test_empty_attribute_value(self):
        tree = parse_xml('<a x=""/>')
        assert tree.to_nested() == ("a", (("@x", ()),))

    def test_entities_unescaped(self):
        tree = parse_xml("<a>x &amp; y &lt;z&gt; &#65; &#x42;</a>")
        assert tree.labels[0] == "x & y <z> A B"

    def test_unknown_entity_kept_verbatim(self):
        tree = parse_xml("<a>&nbsp;</a>")
        assert tree.labels[0] == "&nbsp;"

    def test_cdata_section(self):
        tree = parse_xml("<a><![CDATA[<raw> & stuff]]></a>")
        assert tree.labels[0] == "<raw> & stuff"

    def test_comments_and_pis_skipped(self):
        tree = parse_xml("<?xml version='1.0'?><!-- hi --><a><!-- x --><b/></a>")
        assert tree.to_nested() == ("a", (("b", ()),))

    def test_doctype_skipped(self):
        tree = parse_xml("<!DOCTYPE a><a/>")
        assert tree.labels == ("a",)

    def test_forest(self):
        trees = parse_forest("<a/><b><c/></b><a/>")
        assert [t.label_of(t.root) for t in trees] == ["a", "b", "a"]

    def test_iter_parse_forest_lazy(self):
        iterator = iter_parse_forest("<a/><b/>")
        first = next(iterator)
        assert first.labels == ("a",)
        assert next(iterator).labels == ("b",)
        with pytest.raises(StopIteration):
            next(iterator)

    def test_parse_xml_requires_single_root(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a/><b/>")
        with pytest.raises(XmlParseError):
            parse_xml("   ")


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",                 # unterminated element
            "<a></b>",             # mismatched close tag
            "<a x=1/>",            # unquoted attribute
            "<a x/>",              # attribute without value
            "<a x='1/>",           # unterminated attribute value
            "<a><![CDATA[x</a>",   # unterminated CDATA
            "<!-- never closed",   # unterminated comment
            "text<a/>",            # top-level character data
            "<>",                  # missing name
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XmlParseError):
            parse_forest(text)

    def test_error_carries_position(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_xml("<a x=1/>")
        assert excinfo.value.position is not None


class TestSerializer:
    def test_roundtrip_elements(self):
        text = "<a><b/><c><d/></c></a>"
        assert to_xml(parse_xml(text)) == text

    def test_roundtrip_text(self):
        tree = parse_xml("<a>hello world</a>")
        assert to_xml(tree) == "<a>hello world</a>"

    def test_roundtrip_attributes(self):
        tree = parse_xml('<a x="1"><b/></a>')
        assert to_xml(tree) == '<a x="1"><b/></a>'

    def test_escapes_special_characters(self):
        tree = parse_xml("<a>x &amp; &lt;y&gt;</a>")
        assert to_xml(tree) == "<a>x &amp; &lt;y&gt;</a>"

    def test_sexpr_tree_serialises(self):
        tree = from_sexpr("(a (b) (c))")
        assert to_xml(tree) == "<a><b/><c/></a>"

    def test_deep_document_roundtrip_no_recursion_error(self):
        # Both the parser and the serializer are iterative; a 5000-deep
        # chain must round-trip without hitting the recursion limit.
        from repro.trees import from_nested

        nested = ("a", ())
        for _ in range(5000):
            nested = ("a", (nested,))
        tree = from_nested(nested)
        assert parse_xml(to_xml(tree)) == tree

    @given(st.integers(0, 3))
    def test_parse_serialise_fixpoint(self, depth):
        # Build a nested document of the given depth and round-trip twice;
        # the second round-trip must be a fixpoint.
        text = "<a>" * (depth + 1) + "v" + "</a>" * (depth + 1)
        once = to_xml(parse_xml(text))
        assert to_xml(parse_xml(once)) == once


class TestBugRegressions:
    """Pinned fixes: attribute-quote escaping and malformed charrefs."""

    def test_double_quote_in_attribute_value_roundtrips(self):
        # to_xml used to emit the quote raw, producing k="x"y" which the
        # parser rejects.
        tree = parse_xml('<a k="x&quot;y"/>')
        assert tree.to_nested() == ("a", (("@k", (('x"y', ()),)),))
        assert to_xml(tree) == '<a k="x&quot;y"/>'
        assert parse_xml(to_xml(tree)) == tree

    def test_quote_in_attribute_built_programmatically(self):
        tree = from_nested(("note", (("@label", (('A"1"', ()),)),)))
        assert parse_xml(to_xml(tree)) == tree

    def test_single_quoted_attribute_with_double_quote(self):
        tree = parse_xml("<a k='x\"y'/>")
        assert parse_xml(to_xml(tree)) == tree

    def test_text_position_quotes_stay_literal(self):
        # Quotes only need escaping inside attribute values, not text.
        tree = parse_xml('<a>say "hi"</a>')
        assert to_xml(tree) == '<a>say "hi"</a>'

    @pytest.mark.parametrize(
        "text",
        [
            "<a>&#;</a>",              # no digits
            "<a>&#xZZ;</a>",           # bad hex digits
            "<a>&#x;</a>",             # hex prefix, no digits
            "<a>&#12abc;</a>",         # bad decimal digits
            "<a>&#1114112;</a>",       # beyond max code point
            "<a>&#x110000;</a>",       # beyond max code point (hex)
            "<a>&#" + "9" * 40 + ";</a>",  # OverflowError-sized
            '<a k="&#;"/>',            # same, in attribute position
            '<a k="&#xZZ;"/>',
        ],
    )
    def test_malformed_charref_raises_xml_parse_error(self, text):
        # These used to escape as bare ValueError/OverflowError from chr().
        with pytest.raises(XmlParseError) as excinfo:
            parse_xml(text)
        assert excinfo.value.position is not None

    def test_valid_charrefs_still_decode(self):
        assert parse_xml("<a>&#65;&#x42;</a>").labels[0] == "AB"


# ---------------------------------------------------------------------------
# Property: parse_xml(to_xml(t)) == t over serialisable trees
# ---------------------------------------------------------------------------

from repro.trees.xml import _is_name  # noqa: E402


def _is_text_leaf(nested) -> bool:
    label, kids = nested
    return not kids and not _is_name(label)


def _merge_adjacent_text(nested):
    """The parser merges adjacent text runs; fold them in the expectation."""
    label, kids = nested
    out = []
    for kid in (_merge_adjacent_text(k) for k in kids):
        if out and _is_text_leaf(kid) and _is_text_leaf(out[-1]):
            out[-1] = (out[-1][0] + kid[0], ())
        else:
            out.append(kid)
    return (label, tuple(out))


#: Labels that are legal element names for this parser: non-empty, none of
#: the markup characters, and not starting with the @/!/? sigils that the
#: attribute mapping and intertag skipping claim.
element_names = st.text(
    alphabet="abcdXYZ019._:-", min_size=1, max_size=8
).filter(lambda s: s[0].isalpha())

#: Text content with markup characters, quotes and entity-looking
#: substrings; must be strip-stable and non-empty so the parser's
#: whitespace trimming is the identity on it.
text_content = st.one_of(
    st.sampled_from(
        ['a "quoted" bit', "x & y", "<looks-like-markup>", "&amp;", "&#65;",
         "&#xZZ;", "&unknown;", "R&D", "1 < 2 > 0", "it's ok", "]]>"]
    ),
    st.text(alphabet='abc &<>"\'#;', min_size=1, max_size=12)
    .map(str.strip)
    .filter(lambda t: t and not _is_name(t)),
)


def _serialisable_trees():
    text_leaves = text_content.map(lambda t: (t, ()))
    element_leaves = element_names.map(lambda n: (n, ()))
    return st.recursive(
        element_leaves | text_leaves,
        lambda kids: st.tuples(
            element_names, st.lists(kids, max_size=4).map(tuple)
        ),
        max_leaves=12,
    ).filter(lambda nested: _is_name(nested[0])).map(_merge_adjacent_text)


class TestRoundTripProperty:
    @given(_serialisable_trees())
    @settings(max_examples=200, deadline=None)
    def test_parse_inverts_serialise(self, nested):
        tree = from_nested(nested)
        assert parse_xml(to_xml(tree)) == tree

    @given(element_names, text_content)
    @settings(max_examples=100, deadline=None)
    def test_attribute_values_roundtrip(self, name, value):
        # Attribute values travel through _escape_attribute and the quoted
        # value scanner; quotes and entity-looking substrings must survive.
        tree = from_nested(("a", (("@" + name, ((value, ()),)),)))
        assert parse_xml(to_xml(tree)) == tree
