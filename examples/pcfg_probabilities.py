"""Estimating stochastic-grammar probabilities from a stream (Example 7).

The paper's Section 4 shows that PCFG rule probabilities — ratios of
rule counts, and parse-tree probabilities — products of rule
probabilities — reduce to sums and products of tree-pattern counts, all
of which SketchTree estimates with provable bounds.

Each production rule ``A → B C`` is the depth-1 tree pattern
``(A (B) (C))``.  This example streams a treebank, then:

1. estimates ``P(rule) = COUNT(rule) / Σ COUNT(rules with the same LHS)``
   for the most common expansions of S, NP and VP (numerator: a point
   query; denominator: a Theorem 2 sum);
2. estimates the probability of a small parse tree as the product of its
   rule probabilities, comparing against the exact computation.

Run:  python examples/pcfg_probabilities.py
"""

from collections import Counter

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.datasets import TreebankGenerator
from repro.trees.tree import Nested

N_SENTENCES = 800
K = 2  # production rules are depth-1 patterns; k=2 covers 1- and 2-child rules


def rules_with_lhs(exact: ExactCounter, lhs: str) -> list[Nested]:
    """All depth-1 patterns in the data whose root is ``lhs``."""
    rules = []
    for pattern in exact.counts:
        label, children = pattern
        if label == lhs and children and all(not c[1] for c in children):
            rules.append(pattern)
    return rules


def main() -> None:
    config = SketchTreeConfig(
        s1=80, s2=7, max_pattern_edges=K, n_virtual_streams=229,
        topk_size=8, seed=13,
    )
    synopsis = SketchTree(config)
    exact = ExactCounter(K)
    print(f"streaming {N_SENTENCES} parsed sentences ...")
    for tree in TreebankGenerator(seed=5).generate(N_SENTENCES):
        synopsis.update(tree)
        exact.update(tree)
    print(f"synopsis: {synopsis.memory_report().format()}\n")

    # ------------------------------------------------------------------
    # Rule probabilities per left-hand side
    # ------------------------------------------------------------------
    print("Estimated production-rule probabilities:")
    estimated_probability: dict[Nested, float] = {}
    exact_probability: dict[Nested, float] = {}
    for lhs in ("S", "NP", "VP", "PP"):
        rules = rules_with_lhs(exact, lhs)
        denominator_estimate = synopsis.estimate_sum(rules)
        denominator_actual = exact.count_sum(rules)
        shown = 0
        for rule in sorted(rules, key=lambda r: -exact.count_ordered(r)):
            numerator_estimate = synopsis.estimate_ordered(rule)
            p_est = max(0.0, numerator_estimate) / max(1.0, denominator_estimate)
            p_act = exact.count_ordered(rule) / denominator_actual
            estimated_probability[rule] = p_est
            exact_probability[rule] = p_act
            if shown < 3:
                rhs = " ".join(c[0] for c in rule[1])
                print(f"  {lhs} -> {rhs:<16} P_est = {p_est:.3f}   P = {p_act:.3f}")
                shown += 1
    print()

    # ------------------------------------------------------------------
    # Parse-tree probability: product of its rule probabilities
    # ------------------------------------------------------------------
    parse_rules = [
        ("S", (("NP", ()), ("VP", ()))),
        ("NP", (("DT", ()), ("NN", ()))),
        ("VP", (("VBD", ()), ("NP", ()))),
    ]
    p_est = 1.0
    p_act = 1.0
    for rule in parse_rules:
        p_est *= estimated_probability[rule]
        p_act *= exact_probability[rule]
    chain = "; ".join(f"{r[0]}->{' '.join(c[0] for c in r[1])}" for r in parse_rules)
    print(f"parse tree using [{chain}]")
    print(f"  P_est = {p_est:.5f}   P_exact = {p_act:.5f}   "
          f"relative error = {abs(p_est - p_act) / p_act:.1%}")


if __name__ == "__main__":
    main()
