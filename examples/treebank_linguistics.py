"""Linguistic analysis over a treebank stream (paper Examples 4 and 5).

Two studies from the paper's Section 4 use cases, run over a synthetic
TREEBANK-like stream:

1. **Word-order flexibility** (Example 4): how often does a sentence
   pattern ``S → NP VP`` appear with its constituents in each order?
   Ordered counts of each arrangement vs the unordered total quantify
   how "free" the word order is.

2. **Question counting** (Example 5): how many verb-phrase structures
   could answer a *who*-style question?  The OR-predicate query
   ``VP → VBD|VBZ|VBP NP`` is expanded into three distinct patterns whose
   total frequency SketchTree estimates in one combined evaluation.

Run:  python examples/treebank_linguistics.py
"""

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.datasets import TreebankGenerator
from repro.query.pattern import arrangements, pattern_from_sexpr

N_SENTENCES = 800
K = 4


def main() -> None:
    generator = TreebankGenerator(seed=3)
    config = SketchTreeConfig(
        s1=60, s2=7, max_pattern_edges=K, n_virtual_streams=229,
        topk_size=8, seed=21,
    )
    synopsis = SketchTree(config)
    exact = ExactCounter(K)

    print(f"streaming {N_SENTENCES} parsed sentences ...")
    for tree in generator.generate(N_SENTENCES):
        synopsis.update(tree)
        exact.update(tree)
    print(f"synopsis: {synopsis.memory_report().format()}\n")

    # ------------------------------------------------------------------
    # Study 1: word-order flexibility of S(NP, VP)
    # ------------------------------------------------------------------
    base = pattern_from_sexpr("(S (NP) (VP))")
    print("Study 1: arrangements of S(NP, VP)")
    print(f"{'arrangement':<22} {'estimate':>10} {'actual':>8}")
    for arrangement in sorted(arrangements(base)):
        estimate = synopsis.estimate_ordered(arrangement)
        actual = exact.count_ordered(arrangement)
        label = f"S({', '.join(c[0] for c in arrangement[1])})"
        print(f"{label:<22} {estimate:>10.1f} {actual:>8}")
    unordered_estimate = synopsis.estimate_unordered(base)
    unordered_actual = exact.count_unordered(base)
    print(f"{'unordered total':<22} {unordered_estimate:>10.1f} {unordered_actual:>8}")
    dominant = exact.count_ordered(base) / max(1, unordered_actual)
    print(f"=> canonical order covers {100 * dominant:.1f}% of matches "
          f"(a free-word-order language would be near "
          f"{100 / len(arrangements(base)):.0f}%)\n")

    # ------------------------------------------------------------------
    # Study 2: 'who'-question structures via an OR predicate
    # ------------------------------------------------------------------
    or_query = "(VP (VBD|VBZ|VBP) (NP))"
    estimate = synopsis.estimate_or(pattern_from_sexpr(or_query))
    actual = exact.count_sum(
        [
            pattern_from_sexpr("(VP (VBD) (NP))"),
            pattern_from_sexpr("(VP (VBZ) (NP))"),
            pattern_from_sexpr("(VP (VBP) (NP))"),
        ]
    )
    print("Study 2: VP(VBD|VBZ|VBP, NP) — verb phrases answering a 'who' question")
    print(f"estimate = {estimate:.1f}   actual = {actual}   "
          f"relative error = {abs(estimate - actual) / actual:.1%}")


if __name__ == "__main__":
    main()
