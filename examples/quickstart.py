"""Quickstart: sketch an XML stream, count tree patterns approximately.

Builds a SketchTree synopsis over a stream of XML documents (parsed with
the library's own parser), then answers ordered, unordered, OR-predicate
and sum count queries — comparing every estimate against exact ground
truth computed alongside.

Run:  python examples/quickstart.py
"""

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.trees import parse_forest

# A small "stream" of XML documents: think personalized-news items, each
# a labeled tree.  Real deployments would parse documents as they arrive
# (repro.trees.iter_parse_forest streams lazily).
STREAM_XML = """
<item><headline>w1</headline><body><para>w2</para><para>w3</para></body></item>
<item><headline>w2</headline><body><para>w1</para></body></item>
<item><body><para>w2</para><para>w2</para></body><headline>w1</headline></item>
<item><headline>w1</headline><body><para>w2</para><para>w3</para></body></item>
<alert><headline>w9</headline><body><para>w2</para></body></alert>
""" * 40  # repeat to make the counts non-trivial


def main() -> None:
    trees = parse_forest(STREAM_XML)
    print(f"stream: {len(trees)} documents")

    config = SketchTreeConfig(
        s1=60,                 # accuracy knob (Theorem 1)
        s2=7,                  # confidence knob (delta = 0.1)
        max_pattern_edges=3,   # k: the largest query pattern supported
        n_virtual_streams=31,  # prime partition count (Section 5.3)
        topk_size=4,           # frequent patterns tracked per stream
        seed=11,
    )
    synopsis = SketchTree(config)
    exact = ExactCounter(config.max_pattern_edges)  # ground truth (unbounded memory!)

    # --- single pass over the stream --------------------------------
    for tree in trees:
        synopsis.update(tree)
        exact.update(tree)

    report = synopsis.memory_report()
    print(f"synopsis memory: {report.format()}")
    print(f"exact counting would need {exact.n_distinct_patterns} counters\n")

    # --- queries: any pattern, any time ------------------------------
    queries = [
        ("ordered",   "(item (headline) (body))"),
        ("ordered",   "(body (para) (para))"),
        ("ordered",   "(item (body (para)))"),
        ("unordered", "(item (body) (headline))"),   # matches both sibling orders
    ]
    print(f"{'kind':<10} {'query':<38} {'estimate':>9} {'actual':>7}")
    for kind, sexpr in queries:
        from repro.trees import from_sexpr

        pattern = from_sexpr(sexpr).to_nested()
        if kind == "ordered":
            estimate = synopsis.estimate_ordered(pattern)
            actual = exact.count_ordered(pattern)
        else:
            estimate = synopsis.estimate_unordered(pattern)
            actual = exact.count_unordered(pattern)
        print(f"{kind:<10} {sexpr:<38} {estimate:>9.1f} {actual:>7}")

    # --- OR predicates (paper Example 5) ------------------------------
    or_query = "(item|alert (headline))"
    estimate = synopsis.estimate_or(or_query)
    actual = exact.count_sum(
        [("item", (("headline", ()),)), ("alert", (("headline", ()),))]
    )
    print(f"{'OR':<10} {or_query:<38} {estimate:>9.1f} {actual:>7}")

    # --- sum of distinct patterns (Theorem 2) -------------------------
    patterns = ["(body (para))", "(item (headline))"]
    estimate = synopsis.estimate_sum(patterns)
    from repro.trees import from_sexpr

    actual = exact.count_sum([from_sexpr(p).to_nested() for p in patterns])
    print(f"{'sum':<10} {' + '.join(patterns):<38} {estimate:>9.1f} {actual:>7}")


if __name__ == "__main__":
    main()
