"""Distributed ingest: merge synopses built over disjoint sub-streams.

AMS sketches are linear projections, so two SketchTree synopses built
with the *same configuration and seeds* over different parts of a stream
can be added counter-wise into a synopsis of the whole stream — the
standard "sketch at the edges, merge at the center" deployment (and a
natural extension of the paper's Section 5.3 observation that sketches
sharing seeds are additive).

This example splits one stream across three "ingest nodes", merges the
three synopses, round-trips the result through serialisation, and checks
the merged estimates against a single-node synopsis and exact counts.

Run:  python examples/distributed_merge.py
"""

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.datasets import DblpGenerator

N_RECORDS = 900
N_NODES = 3
K = 3


def main() -> None:
    config = SketchTreeConfig(
        s1=60, s2=7, max_pattern_edges=K, n_virtual_streams=229, seed=6,
    )
    trees = list(DblpGenerator(seed=12).generate(N_RECORDS))
    exact = ExactCounter(K).ingest(trees)

    # --- each node sketches its shard --------------------------------
    shards = [trees[i::N_NODES] for i in range(N_NODES)]
    nodes = []
    for index, shard in enumerate(shards):
        node = SketchTree(config).ingest(shard)
        print(f"node {index}: {node.n_trees} trees, "
              f"{node.n_values} pattern occurrences")
        nodes.append(node)

    # --- center merges (e.g. after shipping snapshot bytes) -----------
    blobs = [node.to_bytes() for node in nodes]
    print(f"snapshot sizes: {[len(b) // 1024 for b in blobs]} KB")
    restored = [SketchTree.from_bytes(blob) for blob in blobs]
    merged = restored[0]
    for node in restored[1:]:
        merged = merged.merge(node)
    print(f"merged: {merged.n_trees} trees, {merged.n_values} occurrences\n")

    # --- merged synopsis answers like a single-node one ---------------
    single = SketchTree(config).ingest(trees)
    queries = [
        "(article (journal))",
        "(inproceedings (author) (title))",
        "(article (author (author_0000)))",
    ]
    print(f"{'query':<36} {'merged':>8} {'single':>8} {'actual':>8}")
    for sexpr in queries:
        merged_estimate = merged.estimate_ordered(sexpr)
        single_estimate = single.estimate_ordered(sexpr)
        from repro.trees import from_sexpr

        actual = exact.count_ordered(from_sexpr(sexpr).to_nested())
        print(f"{sexpr:<36} {merged_estimate:>8.1f} {single_estimate:>8.1f} "
              f"{actual:>8}")
    print("\nmerged and single-node estimates coincide exactly: the sketch "
          "is a linear projection, so ingest order and sharding cannot "
          "change the counters.")


if __name__ == "__main__":
    main()
