"""Selectivity estimation over a bibliography stream (DBLP-like).

The paper's closing use case: SketchTree as a *selectivity estimator*
for tree-pattern queries "especially when the data is very large and
multiple passes over the data is impractically expensive".  This example
streams DBLP-like records once, then:

* estimates selectivities of value queries (element names + CDATA);
* answers extended queries with ``//`` and ``*`` by resolving them
  against the online structural summary (Section 6.2);
* shows the arithmetic-expression interface on a difference query
  (paper Example 6's "A but not under B" shape).

Run:  python examples/dblp_selectivity.py
"""

from repro import Count, ExactCounter, QueryNode, SketchTree, SketchTreeConfig
from repro.datasets import DblpGenerator
from repro.query.pattern import pattern_from_sexpr

N_RECORDS = 1500
K = 3


def main() -> None:
    config = SketchTreeConfig(
        s1=75, s2=7, max_pattern_edges=K, n_virtual_streams=229,
        topk_size=8, maintain_summary=True, seed=4,
    )
    synopsis = SketchTree(config)
    exact = ExactCounter(K)

    print(f"streaming {N_RECORDS} bibliography records ...")
    for tree in DblpGenerator(seed=8).generate(N_RECORDS):
        synopsis.update(tree)
        exact.update(tree)
    print(f"synopsis: {synopsis.memory_report().format()}")
    print(f"structural summary: {synopsis.summary.n_paths} label paths\n")

    # ------------------------------------------------------------------
    # Value queries: which venue / author combinations are common?
    # ------------------------------------------------------------------
    print("Selectivity of value queries (estimate vs actual):")
    queries = [
        "(article (journal (venue_000)))",
        "(inproceedings (booktitle (venue_001)))",
        "(article (author (author_0000)) (year))",
        "(inproceedings (author (author_0001)))",
    ]
    total = exact.n_values
    for sexpr in queries:
        pattern = pattern_from_sexpr(sexpr)
        estimate = synopsis.estimate_ordered(pattern)
        actual = exact.count_ordered(pattern)
        print(f"  {sexpr:<46} est {estimate / total:.2e}  "
              f"actual {actual / total:.2e}  (counts {estimate:.0f} vs {actual})")

    # ------------------------------------------------------------------
    # Extended queries: '//' and '*' via the structural summary
    # ------------------------------------------------------------------
    print("\nExtended queries (resolved against the structural summary):")
    extended = [
        ("(article (//venue_000))", "article //venue_000"),
        ("(inproceedings (*))", "inproceedings / *"),
    ]
    for sexpr, label in extended:
        query = QueryNode.from_sexpr(sexpr)
        resolved = synopsis.summary.resolve(query, max_edges=K)
        estimate = synopsis.estimate_extended(query)
        actual = exact.count_sum(resolved) if resolved else 0
        print(f"  {label:<28} -> {len(resolved)} concrete pattern(s), "
              f"est {estimate:.0f}, actual {actual}")

    # ------------------------------------------------------------------
    # Expression: articles with an ee link MINUS those also giving pages
    # ------------------------------------------------------------------
    with_ee = pattern_from_sexpr("(article (ee))")
    with_both = pattern_from_sexpr("(article (pages) (ee))")  # document order
    expression = Count(with_ee) - Count(with_both)
    estimate = synopsis.estimate_expression(expression)
    actual = exact.evaluate_expression(expression)
    print(f"\nCOUNT(article/ee) - COUNT(article[pages][ee]):")
    print(f"  estimate = {estimate:.1f}   actual = {actual}")


if __name__ == "__main__":
    main()
