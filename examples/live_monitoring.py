"""Live monitoring: checkpoint queries with self-reported error bars.

The paper's Figure 2 model: a synopsis is continuously updated while
documents stream in, and count queries can be issued *at any moment*.
This example combines three of the library's streaming features:

* SAX-style ingestion (`repro.stream.sketch_xml_stream` internals):
  documents are consumed as XML events, never materialised as trees;
* checkpoint queries: every N documents the monitor asks for the current
  count of a watched pattern;
* self-reported confidence intervals
  (:meth:`SketchTree.estimate_ordered_interval`): the synopsis sizes its
  own error bars from its F2 (self-join) estimate — no ground truth
  needed at query time;
* top-k tracking (Section 5.2, ``topk_size=4``): the heaviest patterns
  are held exactly by per-stream trackers, the intervals are
  tracker-compensated, and the residual self-join size (hence the bar
  half-width) shrinks by the deleted heavy mass.

A drifting workload is simulated: halfway through, the stream's mix
shifts towards "alert" documents; the monitor's estimates track the
change in real time, and the ``tracked`` column shows the watched
pattern's exactly-deleted frequency once it becomes heavy enough for a
tracker slot.

Run:  python examples/live_monitoring.py
"""
# sketchlint: disable-file=SKL004
# A monitoring dashboard stamps checkpoints with the *wall* clock on
# purpose: operators correlate them with external logs, and nothing here
# is a measured section feeding a cost ratio.

import time

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.stream.sax import SaxPatternEnumerator
from repro.trees import parse_xml
from repro.trees.xml import iter_events

NORMAL = "<event><kind>page_view</kind><user><id>u</id></user></event>"
ALERT = "<event><kind>error</kind><source><svc>api</svc></source></event>"

WATCHED = "(event (kind (error)))"
CHECKPOINT_EVERY = 100


def document_stream():
    """1000 documents; error events surge in the second half."""
    for index in range(1000):
        surge = index >= 500
        if index % (4 if surge else 20) == 0:
            yield ALERT
        else:
            yield NORMAL


def main() -> None:
    # A pattern as frequent as the watched one earns a tracker slot: its
    # occurrences are deleted from the sketch and pinned exactly, so the
    # compensated interval tightens onto the true count (Section 5.2).
    config = SketchTreeConfig(
        s1=60, s2=7, max_pattern_edges=3, n_virtual_streams=229,
        topk_size=4, seed=17,
    )
    synopsis = SketchTree(config)
    exact = ExactCounter(config.max_pattern_edges)
    watched_pattern = ("event", (("kind", (("error", ()),)),))
    watched_value = synopsis.encoder.encode(watched_pattern)

    print(f"{'wall clock':>19} {'docs':>5} {'estimate':>9} "
          f"{'interval (80%)':>18} {'tracked':>8} {'actual':>7}")
    document: list = []
    enumerator = SaxPatternEnumerator(config.max_pattern_edges, document.append)
    for index, xml in enumerate(document_stream(), start=1):
        for event in iter_events(xml):
            enumerator.feed(event)
        synopsis.update_from_patterns(document)
        document.clear()
        exact.update(parse_xml(xml))  # ground truth, for the printout only

        if index % CHECKPOINT_EVERY == 0:
            interval = synopsis.estimate_ordered_interval(WATCHED, confidence=0.8)
            tracked = synopsis.tracked().get(watched_value, 0)
            actual = exact.count_ordered(watched_pattern)
            stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(time.time()))
            print(
                f"{stamp:>19} {index:>5} {interval.estimate:>9.1f} "
                f"[{interval.low:>7.1f}, {interval.high:>7.1f}] "
                f"{tracked:>8} {actual:>7}"
            )

    print("\nthe estimate tracks the mid-stream surge; once the watched "
          "pattern earns a tracker slot, the `tracked` column pins the "
          "deleted occurrences exactly and the compensated interval "
          "tightens onto the true count (Section 5.2).")


if __name__ == "__main__":
    main()
