"""Serving-tier smoke: boot, ingest, query, scrape, clean SIGTERM.

Starts the sharded HTTP service as a *real subprocess*
(``python -m repro.serve --port 0``), exactly as an operator would, and
drives one full lifecycle against it:

1. parse the printed ``serving on http://...`` line for the ephemeral
   port;
2. wait for ``/readyz``;
3. ingest a small stream across the shards, with a drain to quiesce;
4. query the lock-free read path and the exact-merge admin path, and
   check the merged answer equals a single-threaded reference synopsis
   built in this process (AMS linearity over HTTP);
5. scrape ``/metrics`` and verify the exposition text parses (including
   the deliberately multi-line HELP string of ``serve_queue_depth``);
6. send SIGTERM and verify the graceful path: exit code 0, final
   checkpoints written, ``stopped cleanly`` on stdout.

A second boot then exercises the mergeable-top-k surface
(``--topk 4 --window-trees 16``): per-shard trackers and sliding
windows run freely, ``/window/topk`` serves the live trending-pattern
list, ``/admin/topk`` the exact-merged whole-stream one, and
``/metrics`` exports the top-k gauges.  (No bit-identity assertion on
this boot: the admin merge *refolds* trackers over the shards' union of
heavy hitters, which legitimately differs from a single-threaded
tracker's history — the counters, once unfolded, are what's
bit-identical, and tests/test_topk_merge.py pins that.)

Run:  python examples/serving_smoke.py
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro import SketchTree, SketchTreeConfig
from repro.trees import from_sexpr

STREAM = [
    "(article (author) (title))",
    "(article (author (name)) (year))",
    "(book (author) (title) (year))",
    "(article (title) (year))",
] * 8

QUERY = "(article (author))"

CONFIG = SketchTreeConfig(
    s1=40, s2=5, max_pattern_edges=3, n_virtual_streams=31, seed=11
)


def post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read().decode()


def boot(extra_args):
    """Start ``python -m repro.serve`` and return (process, base URL)."""
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--port", "0", "--shards", "3",
            "--s1", str(CONFIG.s1), "--s2", str(CONFIG.s2),
            "--streams", str(CONFIG.n_virtual_streams),
            "--seed", str(CONFIG.seed),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = server.stdout.readline()
    match = re.search(r"serving on (http://[\d.]+:\d+)", line)
    assert match, f"no address line, got: {line!r}"
    base = match.group(1)
    deadline = time.monotonic() + 30
    while True:
        try:
            get(base, "/readyz")
            return server, base
        except (urllib.error.URLError, urllib.error.HTTPError):
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def topk_window_smoke() -> None:
    """Second lifecycle: per-shard top-k trackers + sliding windows."""
    server, base = boot(["--topk", "4", "--window-trees", "16",
                         "--bucket-trees", "4"])
    try:
        print(f"top-k server up at {base}")
        for start in range(0, len(STREAM), 4):
            post(base, "/ingest", {"trees": STREAM[start : start + 4]})
        drained = post(base, "/admin/drain", {})
        assert drained["n_trees"] == len(STREAM), drained

        windowed = json.loads(get(base, "/window/topk?limit=3"))
        assert windowed["patterns"], windowed
        assert windowed["trees_covered"] <= len(STREAM), windowed
        top = windowed["patterns"][0]
        assert top["frequency"] >= 1 and top["pattern"], top
        print(
            f"/window/topk over {windowed['trees_covered']} recent trees: "
            f"{top['pattern']} x{top['frequency']}"
        )

        merged = json.loads(get(base, "/admin/topk?limit=3"))
        assert merged["merged"] and merged["n_trees"] == len(STREAM), merged
        assert merged["patterns"], merged
        print(
            "/admin/topk (exact merge): "
            + ", ".join(
                f"{e['pattern']} x{e['frequency']}" for e in merged["patterns"]
            )
        )

        estimate = post(base, "/window/estimate/ordered", {"query": QUERY})
        assert estimate["window_trees"] == 16, estimate
        print(f"window estimate for {QUERY}: {estimate['estimate']:.1f}")

        metrics = get(base, "/metrics")
        for gauge in (
            "repro_serve_topk_deleted_self_join_mass",
            "repro_serve_window_topk_refolds_total",
            "repro_serve_window_topk_deleted_self_join_mass",
        ):
            assert gauge in metrics, f"{gauge} missing from /metrics"
        print("top-k gauges present on /metrics")

        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=60)
        assert server.returncode == 0, f"exit {server.returncode}: {out}"
        assert "stopped cleanly" in out, out
        print("top-k boot: clean SIGTERM shutdown")
    finally:
        if server.poll() is None:
            server.kill()


def main() -> int:
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    server, base = boot(["--checkpoint-dir", str(checkpoint_dir)])
    try:
        print(f"server up at {base}")

        for start in range(0, len(STREAM), 4):
            post(base, "/ingest", {"trees": STREAM[start : start + 4]})
        drained = post(base, "/admin/drain", {})
        assert drained["n_trees"] == len(STREAM), drained
        print(f"ingested and drained {drained['n_trees']} trees")

        fast = post(base, "/estimate/ordered", {"query": QUERY})
        exact_merge = post(base, "/admin/estimate/ordered", {"query": QUERY})
        reference = SketchTree(CONFIG)
        reference.update_batch([from_sexpr(text) for text in STREAM])
        expected = reference.estimate_ordered(QUERY)
        assert exact_merge["estimate"] == expected, (exact_merge, expected)
        print(
            f"estimates for {QUERY}: lock-free sum {fast['estimate']:.1f}, "
            f"merged {exact_merge['estimate']:.1f} == reference (bit-identical)"
        )

        metrics = get(base, "/metrics")
        for text_line in metrics.splitlines():
            assert text_line and not text_line.startswith(" "), repr(text_line)
        assert "repro_serve_trees_total" in metrics
        assert "\\n" in metrics  # the multi-line HELP arrives escaped
        print(f"/metrics parses ({len(metrics.splitlines())} lines)")

        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=60)
        assert server.returncode == 0, f"exit {server.returncode}: {out}"
        assert "stopped cleanly" in out, out
        checkpoints = sorted(checkpoint_dir.glob("shard*.sktsnap"))
        assert len(checkpoints) >= 3, checkpoints
        print(
            f"clean SIGTERM shutdown; {len(checkpoints)} final checkpoints "
            f"in {checkpoint_dir}"
        )
    finally:
        if server.poll() is None:
            server.kill()
    topk_window_smoke()
    return 0


if __name__ == "__main__":
    sys.exit(main())
