"""Trend detection with sliding-window counting.

The landmark synopsis (paper model) answers "how often *ever*?"; this
example uses :class:`~repro.core.window.WindowedSketchTree` to answer
"how often *recently*?", the question trend monitors actually ask.

A news-like stream rotates through three topic mixes; the window (last
300 documents, 50-document buckets) tracks each topic's current share,
forgetting old topics as they leave the window, while a landmark
synopsis's counts only ever accumulate.  Exact windowed counts are
computed alongside for comparison.

With ``topk_size=4`` each bucket additionally runs per-stream top-k
trackers; on bucket expiry the tracked state composes through the
fold/unfold protocol (merge-on-expiry), so
:meth:`WindowedSketchTree.tracked_patterns` is a *live trending list*:
at each phase boundary the printed top patterns have rotated with the
topic mix — the very patterns an hour-old landmark tracker would still
rank by stale history.

Run:  python examples/windowed_trends.py
"""

from collections import deque

from repro import ExactCounter, SketchTree, SketchTreeConfig
from repro.core import WindowedSketchTree
from repro.trees import from_sexpr
from repro.trees.builders import from_nested, to_sexpr

WINDOW = 300
BUCKET = 50
PHASES = [
    ("politics", 400),
    ("sports", 400),
    ("markets", 400),
]


def make_doc(topic: str):
    return from_sexpr(f"(item (topic ({topic})) (body (para)))")


def main() -> None:
    config = SketchTreeConfig(
        s1=50, s2=7, max_pattern_edges=3, n_virtual_streams=229,
        topk_size=4, seed=23,
    )
    window = WindowedSketchTree(config, window_trees=WINDOW, bucket_trees=BUCKET)
    landmark = SketchTree(config)
    recent = deque(maxlen=WINDOW + BUCKET)  # ground truth for the window

    print(f"{'docs':>5} {'phase':<9} "
          f"{'win politics':>13} {'win sports':>11} {'win markets':>12} "
          f"{'landmark politics':>18}")
    seen = 0
    for topic, length in PHASES:
        for i in range(length):
            # 80% current topic, 20% background mix.
            doc_topic = topic if (i % 5) else "weather"
            doc = make_doc(doc_topic)
            window.update(doc)
            landmark.update(doc)
            recent.append(doc_topic)
            seen += 1
            if seen % 200 == 0:
                row = [f"{seen:>5} {topic:<9}"]
                for probe in ("politics", "sports", "markets"):
                    estimate = window.estimate_ordered(f"(topic ({probe}))")
                    actual = sum(
                        1 for t in list(recent)[-window.window_size_actual:]
                        if t == probe
                    )
                    row.append(f"{estimate:>7.0f}/{actual:<5}")
                row.append(
                    f"{landmark.estimate_ordered('(topic (politics))'):>12.0f}"
                )
                print(" ".join(row))
        # The heaviest tracked patterns are the structural ones every
        # document shares; the *topic-bearing* ones underneath are what
        # rotate with the phases.
        trending = [
            entry for entry in window.tracked_patterns()
            if entry["pattern"] and "topic" in str(entry["pattern"])
            and entry["pattern"] != ("topic", ())
            and "item" not in str(entry["pattern"])
        ][:3]
        names = ", ".join(
            f"{to_sexpr(from_nested(entry['pattern']))} x{entry['frequency']}"
            for entry in trending
        )
        print(f"      trending topics (window top-k): {names}")

    print("\nwindowed counts rise and fall with the phases "
          "(estimate/actual pairs), while the landmark count only grows — "
          "the window forgets, the paper's synopsis remembers.  the "
          "trending list is the window's live tracked state, refolded "
          "across bucket expiries (merge-on-expiry).")


if __name__ == "__main__":
    main()
